"""The multi-tenant provenance service facade.

One object owns the whole serving stack the ROADMAP's "millions of
users" north star needs above a single browser's capture layer:

* a :class:`~repro.service.pool.StorePool` hash-sharding users across
  N SQLite stores (lazily opened, LRU-bounded connections);
* a :class:`~repro.service.ingest.IngestPipeline` journaling every
  event (group-commit) before batching it into shard transactions —
  in parallel across per-shard flush workers — with crash-replay on
  startup;
* a :class:`~repro.service.cache.QueryCache` memoizing per-user query
  results (invalidated by that user's writes) and service-scoped
  cross-shard results (invalidated by *any* write).

Reads are read-your-writes: a query first drains any buffered events
for the user's shard, so a caller never sees the cache or store lag its
own acknowledged writes.  Cross-shard reads (:meth:`global_search`,
:meth:`aggregate_stats`) barrier the whole pipeline, then scatter-gather
across every populated shard on a query thread pool.  All ids in and
out of the facade are the user's own raw node ids; tenant prefixes
never escape (global results carry ``(user_id, node_id)`` pairs).
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass

from repro.core.capture import NodeInterval
from repro.core.graph import ProvenanceGraph
from repro.core.model import AttrValue, ProvNode
from repro.core.retention import (
    RedactionReport,
    RetentionReport,
    expire_before as graph_expire_before,
    forget_site as graph_forget_site,
)
from repro.core.taxonomy import EdgeKind
from repro.errors import (
    ConfigurationError,
    ReproError,
    UnknownNodeError,
    WorkerCrashedError,
)
from repro.service.cache import GLOBAL_SCOPE, CacheStats, QueryCache
from repro.service.events import (
    USER_SEP,
    EdgeEvent,
    IntervalEvent,
    NodeEvent,
    ProvEvent,
    decode_event,
    encode_event,
    qualify,
    unqualify,
    validate_user_id,
)
from repro.service.audit import build_case_report
from repro.service.indexer import ensure_index
from repro.service.ingest import IngestJournal, IngestPipeline
from repro.service.integrity import IntegrityReport
from repro.service.metrics import COUNT_BUCKETS, MetricsRegistry, NULL_REGISTRY
from repro.service.parallel import ranked_merge, scatter_gather
from repro.service.pool import PoolStats, StorePool
from repro.service.tracing import NULL_TRACER, Tracer
from repro.service.search import (
    RankingParams,
    SearchHit,
    SearchPage,
    SnippetParams,
    attach_snippets,
    decode_cursor,
    encode_cursor,
    query_fingerprint,
    query_terms,
    shard_ranked_scan,
    slice_after,
)


@dataclass(frozen=True)
class UserStats:
    """Per-tenant footprint inside the service."""

    user_id: str
    shard: int
    nodes: int
    edges: int
    intervals: int

    def to_dict(self) -> dict:
        """The canonical JSON-safe form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "UserStats":
        return cls(**payload)


@dataclass(frozen=True)
class AggregateStats:
    """Cross-shard totals, gathered by the scatter-gather read path."""

    shards: int
    populated_shards: int
    nodes: int
    edges: int
    intervals: int
    pages: int

    def to_dict(self) -> dict:
        """The canonical JSON-safe form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "AggregateStats":
        return cls(**payload)


@dataclass(frozen=True)
class DeadLetter:
    """One quarantined event, decoded for inspection and repair."""

    seq: int
    error: str
    event: ProvEvent

    def to_dict(self) -> dict:
        """The canonical JSON-safe form; inverse of :meth:`from_dict`.

        The event rides in the journal codec
        (:func:`repro.service.events.encode_event`), so a dead letter
        inspected over the wire carries exactly what the journal
        quarantined and a repaired replacement posts back in the same
        shape.
        """
        return {
            "seq": self.seq,
            "error": self.error,
            "event": encode_event(self.event),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "DeadLetter":
        return cls(
            seq=payload["seq"],
            error=payload["error"],
            event=decode_event(payload["event"]),
        )


def parse_workers(workers: int | str | None, shards: int) -> tuple[str, int]:
    """Resolve the service's ``workers=`` spec to ``(mode, count)``.

    Accepted specs::

        None / 0        serial drain (the benchmark baseline)
        N               N flush threads (back-compat integer form)
        "auto"          thread mode, min(shards, cpu_count) workers
        "thread[:N]"    thread mode, explicit or auto count
        "process[:N]"   shard worker processes, explicit or auto count

    Thread workers overlap shard I/O (fsync, WAL writes); process
    workers add CPU parallelism past the GIL, at the cost of one
    interpreter per worker and journal-codec serialization on every
    batch hand-off.
    """
    if workers is None:
        return ("thread", 0)
    if isinstance(workers, bool):
        raise ConfigurationError(f"invalid workers spec: {workers!r}")
    if isinstance(workers, int):
        if workers < 0:
            raise ConfigurationError("workers must be >= 0 (or a mode spec)")
        return ("thread", workers)
    if isinstance(workers, str):
        mode, _sep, count_text = workers.partition(":")
        if mode == "auto":
            mode = "thread"
        if mode in ("thread", "process"):
            if not count_text:
                count = min(shards, os.cpu_count() or 1)
            else:
                try:
                    count = int(count_text)
                except ValueError:
                    count = -1
                if count < 1:
                    raise ConfigurationError(
                        f"invalid worker count in spec {workers!r}"
                    )
            return (mode, count)
    raise ConfigurationError(
        f"workers must be an int, None, 'auto', 'thread[:N]', or"
        f" 'process[:N]', not {workers!r}"
    )


@dataclass(frozen=True)
class ServiceStats:
    """Whole-service accounting snapshot."""

    users: int
    events_submitted: int
    events_applied: int
    flushes: int
    replayed: int
    quarantined: int
    cache: CacheStats
    pool: PoolStats


@dataclass(frozen=True)
class ShardHealth:
    """One shard's ingest liveness."""

    shard: int
    #: Events accepted for this shard but not yet applied.
    queue_depth: int
    #: Seconds since this shard last settled a batch; ``None`` when the
    #: shard has never flushed in this process.
    last_flush_age_s: float | None
    #: True while the shard has an undrained apply failure parked — its
    #: buffered events cannot drain until the next barrier requeues.
    poisoned: bool

    def to_dict(self) -> dict:
        """The canonical JSON-safe form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardHealth":
        return cls(**payload)


@dataclass(frozen=True)
class TenantHealth:
    """One tenant's recent write activity (this process's lifetime)."""

    user_id: str
    shard: int
    events_submitted: int
    last_write_age_s: float

    def to_dict(self) -> dict:
        """The canonical JSON-safe form; inverse of :meth:`from_dict`."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "TenantHealth":
        return cls(**payload)


@dataclass(frozen=True)
class ServiceHealth:
    """Operator rollup: where ingest stands, per shard and per tenant.

    ``status`` is ``"ok"`` unless something needs attention:
    ``"degraded"`` when events sit quarantined in the dead-letter file
    or a shard is poisoned by an undrained apply failure.
    """

    status: str
    #: Events accepted but not yet applied, service-wide.
    pending: int
    #: Quarantined events awaiting redrive.
    deadletters: int
    #: Journal sequences not yet covered by the checkpoint.
    journal_lag: int
    cache_hit_rate: float
    cache_epoch: int
    shards: tuple[ShardHealth, ...]
    #: Most recently active tenants first, capped by ``max_tenants``.
    tenants: tuple[TenantHealth, ...]

    def to_dict(self) -> dict:
        """The canonical JSON-safe form; inverse of :meth:`from_dict`."""
        return {
            "status": self.status,
            "pending": self.pending,
            "deadletters": self.deadletters,
            "journal_lag": self.journal_lag,
            "cache_hit_rate": self.cache_hit_rate,
            "cache_epoch": self.cache_epoch,
            "shards": [shard.to_dict() for shard in self.shards],
            "tenants": [tenant.to_dict() for tenant in self.tenants],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ServiceHealth":
        return cls(
            status=payload["status"],
            pending=payload["pending"],
            deadletters=payload["deadletters"],
            journal_lag=payload["journal_lag"],
            cache_hit_rate=payload["cache_hit_rate"],
            cache_epoch=payload["cache_epoch"],
            shards=tuple(
                ShardHealth.from_dict(shard) for shard in payload["shards"]
            ),
            tenants=tuple(
                TenantHealth.from_dict(tenant)
                for tenant in payload["tenants"]
            ),
        )


class ProvenanceService:
    """Record and query provenance for many users concurrently."""

    def __init__(
        self,
        root: str | None = None,
        *,
        shards: int = 4,
        max_open_stores: int | None = None,
        batch_size: int = 256,
        cache_capacity: int = 512,
        cache_epoch_writes: int | None = 256,
        fsync: bool = False,
        workers: int | str | None = "auto",
        journal_rotate_bytes: int | None = 32 * 1024 * 1024,
        index: bool = True,
        ranking: RankingParams | None = None,
        snippets: SnippetParams | None = None,
        scan_cache_rows: int = 100_000,
        metrics: bool = True,
        slow_op_ms: float | None = None,
        slow_op_log: int = 256,
        integrity: bool = True,
    ) -> None:
        """See the class docstring; the search/caching knobs:

        * ``index`` — maintain the per-shard relevance index from the
          apply path (the default).  ``False`` trades ranked-search
          freshness for raw ingest throughput; affected shards are
          marked stale and rebuild lazily on the first ranked query.
        * ``ranking`` — :class:`~repro.service.search.RankingParams`
          for the BM25/recency/frecency blend.
        * ``snippets`` — :class:`~repro.service.search.SnippetParams`
          for ranked-search match highlighting (window width, marker).
        * ``scan_cache_rows`` — the largest per-shard blended scan the
          paged-search continuation cache will hold (the cache counts
          entries, not bytes; this bounds the bytes).  Queries whose
          scans exceed it stay correct but re-score on every page.
        * ``cache_epoch_writes`` — how many writes one ingest epoch
          spans.  Cross-shard cached results (``global_search``,
          ``ranked_search``, ``aggregate_stats``) survive writes within
          an epoch and drop in one batch when it rolls, so a hot global
          query under sustained ingest stays a cache hit at a bounded
          staleness (at most this many events).  ``None`` restores
          strict drop-on-every-write freshness.  Per-user reads are
          unaffected: read-your-own-writes always holds.

        Observability knobs:

        * ``metrics`` — maintain the service-wide metrics registry
          (the default; see :meth:`metrics_snapshot`).  ``False``
          swaps in no-op instruments — the hot paths keep their call
          sites but pay only an empty method call each.
        * ``slow_op_ms`` — ops slower than this threshold append a
          structured record (span breakdown included) to a bounded
          in-memory log read via :meth:`slow_ops`.  ``None`` (default)
          disables the slow-op log; metrics histograms still record.
        * ``slow_op_log`` — how many slow-op records the log retains
          (a ring: oldest records drop first).

        Integrity knob:

        * ``integrity`` — hash-chain every journal record, seal
          segments at rotation, and maintain the signed-root manifest
          (the default; see :meth:`verify_integrity`).  The chain
          rides the existing group commit, so the ingest cost is one
          SHA-256 per event.  ``False`` disables the tamper-evident
          record entirely — :meth:`verify_integrity` then raises
          :class:`~repro.errors.ConfigurationError`.
        """
        worker_mode, worker_count = parse_workers(workers, shards)
        self._tmp: tempfile.TemporaryDirectory | None = None
        if root is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="prov-service-")
            root = self._tmp.name
        self.root = root
        os.makedirs(root, exist_ok=True)
        self._lock_path: str | None = None
        self._fanout: ThreadPoolExecutor | None = None
        self._fanout_lock = threading.Lock()
        self._acquire_lock()
        try:
            self._check_layout(shards)
            self.metrics = MetricsRegistry() if metrics else NULL_REGISTRY
            self.tracer = (
                Tracer(
                    self.metrics,
                    slow_op_ms=slow_op_ms,
                    slow_log_capacity=slow_op_log,
                )
                if metrics
                else NULL_TRACER
            )
            self._metric_ranked_pages = self.metrics.counter("search.pages")
            self._metric_scans = self.metrics.counter("search.scans")
            self._metric_continuations = self.metrics.counter(
                "search.continuations"
            )
            self._metric_shards_merged = self.metrics.histogram(
                "search.shards_merged", bounds=COUNT_BUCKETS
            )
            self.pool = StorePool(
                root,
                shards=shards,
                max_open=(
                    max_open_stores if max_open_stores is not None else shards
                ),
                metrics=self.metrics,
            )
            self.cache = QueryCache(
                cache_capacity,
                epoch_writes=cache_epoch_writes,
                metrics=self.metrics,
            )
            self.ranking = ranking if ranking is not None else RankingParams()
            self.snippets = (
                snippets if snippets is not None else SnippetParams()
            )
            if scan_cache_rows < 1:
                raise ConfigurationError("scan_cache_rows must be >= 1")
            self.scan_cache_rows = scan_cache_rows
            self.journal = IngestJournal(
                os.path.join(root, "ingest.journal"),
                fsync=fsync,
                rotate_bytes=journal_rotate_bytes,
                metrics=self.metrics,
                integrity=integrity,
            )
            self.ingest = IngestPipeline(
                self.pool, self.journal, batch_size=batch_size,
                cache=self.cache, workers=worker_count,
                worker_mode=worker_mode, index=index,
                metrics=self.metrics, tracer=self.tracer,
            )
            self._users: set[str] = set()
            #: Events recovered from the journal at startup (crash replay).
            self.replayed = self.ingest.replay()
        except BaseException:
            self._release_lock()
            raise

    # -- writes -----------------------------------------------------------------

    def record_event(self, event: ProvEvent) -> int:
        """Accept one pre-built event; returns its journal sequence.

        Edge events have their id remapped to the journal sequence —
        caller-supplied edge ids (e.g. capture-local counters) collide
        across tenants sharing a shard, and ``INSERT OR REPLACE`` would
        let one user overwrite another's edges.
        """
        if event.user_id not in self._users:  # regex only on first sight
            validate_user_id(event.user_id)
            self._users.add(event.user_id)
        if isinstance(event, EdgeEvent):
            edge = event.edge
            return self.ingest.submit_edge(
                event.user_id,
                edge.kind,
                edge.src,
                edge.dst,
                timestamp_us=edge.timestamp_us,
                attrs=dict(edge.attrs) or None,
            ).id
        return self.ingest.submit(event)

    def record_node(self, user_id: str, node: ProvNode) -> int:
        return self.record_event(NodeEvent(user_id=user_id, node=node))

    def record_edge(
        self,
        user_id: str,
        kind: EdgeKind,
        src: str,
        dst: str,
        *,
        timestamp_us: int,
        attrs: dict[str, AttrValue] | None = None,
    ) -> int:
        """Record an edge between *user_id*'s nodes; returns the edge id.

        Edge ids are allocated from the journal sequence, so they are
        unique across every tenant sharing a shard.
        """
        if user_id not in self._users:  # regex only on first sight
            validate_user_id(user_id)
            self._users.add(user_id)
        edge = self.ingest.submit_edge(
            user_id, kind, src, dst, timestamp_us=timestamp_us, attrs=attrs
        )
        return edge.id

    def record_interval(self, user_id: str, interval: NodeInterval) -> int:
        return self.record_event(
            IntervalEvent(user_id=user_id, interval=interval)
        )

    def ingest_graph(
        self,
        user_id: str,
        graph: ProvenanceGraph,
        *,
        intervals: tuple[NodeInterval, ...] | list[NodeInterval] = (),
    ) -> int:
        """Stream a captured provenance graph through the pipeline.

        The bridge from the single-user capture layer: nodes land first,
        then edges (ids remapped to journal sequences), then intervals.
        Returns the number of events submitted.
        """
        validate_user_id(user_id)
        events = 0
        for node in graph.nodes():
            self.record_node(user_id, node)
            events += 1
        for edge in graph.edges():
            self.record_edge(
                user_id,
                edge.kind,
                edge.src,
                edge.dst,
                timestamp_us=edge.timestamp_us,
                attrs=dict(edge.attrs) or None,
            )
            events += 1
        for interval in intervals:
            self.record_interval(user_id, interval)
            events += 1
        return events

    def flush(self) -> int:
        """Drain all buffered events to the shard stores."""
        return self.ingest.flush()

    # -- dead-letter operations -------------------------------------------------

    def deadlettered(self) -> list[DeadLetter]:
        """Quarantined events, oldest first, decoded for inspection.

        An event lands here when crash replay (or a redrive) proved the
        stores can never accept it — e.g. an edge whose endpoints were
        never recorded.  Each entry keeps the original journal sequence
        and the error that condemned it; repair and resubmit with
        :meth:`redrive`.
        """
        return [
            DeadLetter(
                seq=entry["seq"],
                error=entry["error"],
                event=decode_event(entry["ev"]),
            )
            for entry in self.journal.deadlettered()
        ]

    def redrive(self, seq: int, *, event: ProvEvent | None = None) -> int:
        """Repair and resubmit the quarantined entry *seq*.

        *event* is the repaired replacement (same tenant); ``None``
        retries the original — useful when the missing context has
        since been recorded (e.g. the edge's endpoints exist now).  The
        entry leaves the dead-letter file, the event re-enters the
        pipeline under a fresh journal sequence (returned), and the
        tenant's shard is drained so the caller immediately sees
        whether the repair took.  If the event is *still* poison it is
        re-quarantined under its new sequence — a failed redrive never
        wedges the pipeline — and the original error re-raises.

        Ordering: the replacement is journaled *before* the entry
        leaves the dead-letter file, so a crash in between can at worst
        leave the entry redrivable a second time (rows are idempotent)
        — never lost from both places.
        """
        entries = {entry["seq"]: entry for entry in self.journal.deadlettered()}
        entry = entries.get(seq)
        if entry is None:
            raise ConfigurationError(
                f"no dead-lettered entry with sequence {seq}"
            )
        original = decode_event(entry["ev"])
        replacement = original if event is None else event
        if replacement.user_id != original.user_id:
            raise ConfigurationError(
                f"redrive cannot move an event between tenants"
                f" ({original.user_id!r} -> {replacement.user_id!r})"
            )
        new_seq = self.record_event(replacement)
        self.journal.pop_deadletter(seq)
        try:
            self.ingest.flush(self.pool.shard_of(replacement.user_id))
        except WorkerCrashedError:
            raise  # infrastructure: the event is requeued, not poison
        except ReproError:
            self.ingest.quarantine_pending()
            raise
        return new_seq

    # -- retention --------------------------------------------------------------

    def expire_before(
        self,
        user_id: str,
        cutoff_us: int,
        *,
        bridge: bool = True,
        compact: bool = False,
    ) -> RetentionReport:
        """Expire *user_id*'s provenance older than *cutoff_us*.

        Runs :func:`repro.core.retention.expire_before` per-tenant
        through the shard pool: the tenant's subgraph is loaded, the
        expiration (with lineage bridging, unless ``bridge=False``)
        computed, and the doomed nodes surgically removed from the
        shard — rows, attrs, intervals, and relevance-index postings
        alike; no other tenant's rows are touched.  Bridge edges
        re-enter through the normal journaled write path, so their ids
        come from the journal sequence and can never collide with
        another tenant's edges.

        A full pipeline barrier runs first: every journaled event is
        applied and checkpointed before the surgery, so a crash replay
        can never resurrect expired rows.  Bridges are journaled and
        flushed *before* the deletion — a crash in between leaves the
        bridges persisted and the expired nodes still present, and
        re-running the expiration finishes the job (already-persisted
        bridges are recognized and never re-submitted, so repeated runs
        add nothing twice).  The tenant's cached queries drop and the
        ingest epoch rolls (deleted data must not serve from the
        cross-shard cache, staleness budget or not) — which also kills
        every outstanding paged-search cursor's continuation state, so
        a cursor minted before the surgery re-scores and can never
        resurface expired hits.  ``compact=True`` additionally sweeps
        ghost vocabulary rows from the shard's relevance index in the
        same transaction as the surgery (see
        :func:`repro.service.indexer.compact_index` for the tid
        stability invariants).  Run it quiesced for the tenant — events
        submitted concurrently with the surgery may land before or
        after the cutoff computation.
        """
        validate_user_id(user_id)
        shard = self.pool.shard_of(user_id)
        self.ingest.flush()  # journal barrier: checkpoint covers everything
        prefix = qualify(user_id, "")
        with self.pool.checkout(shard) as store:
            graph = store.load_subgraph(prefix)
        new_graph, report = graph_expire_before(
            graph, cutoff_us, bridge=bridge
        )
        doomed = set(graph.node_ids()) - set(new_graph.node_ids())
        # Journal only the *new* bridges: a surviving bridge from an
        # earlier run is already a row, and re-submitting it would
        # insert a duplicate edge under a fresh journal id.
        persisted = {
            (edge.src, edge.dst)
            for edge in graph.edges()
            if edge.attrs.get("bridged") == 1
        }
        bridges = [
            edge
            for edge in new_graph.edges()
            if edge.attrs.get("bridged") == 1
            and (edge.src, edge.dst) not in persisted
        ]
        for edge in bridges:
            self.record_edge(
                user_id,
                edge.kind,
                unqualify(user_id, edge.src),
                unqualify(user_id, edge.dst),
                timestamp_us=edge.timestamp_us,
                attrs=dict(edge.attrs),
            )
        if bridges:
            self.ingest.flush(shard)
        with self.pool.checkout(shard) as store, store.exclusive():
            store.delete_nodes_by_id(sorted(doomed))
            store.prune_orphan_pages()
            if compact:
                store.compact_terms()
            store.commit()
        # A shard worker process holds its own store instance whose
        # row caches now point at deleted rows; tell it to forget them
        # before the next batch.
        self.ingest.drop_shard_caches(shard)
        self.cache.invalidate_user(user_id)
        self.cache.roll_epoch()
        # The deletion itself becomes part of the auditable record: a
        # signed tombstone says *what* retention removed and re-seals
        # the manifest, so verification stays green afterwards.
        self.journal.record_tombstone(
            "expire_before",
            user=user_id,
            cutoff_us=cutoff_us,
            nodes_removed=report.nodes_removed,
            edges_removed=report.edges_removed,
            bridges_added=report.bridge_edges_added,
        )
        return report

    def forget_site(
        self, user_id: str, site: str, *, compact: bool = False
    ) -> RedactionReport:
        """Redact every trace of *site* from *user_id*'s provenance.

        Runs :func:`repro.core.retention.forget_site` per-tenant: the
        site's nodes (and search terms that only led there) disappear
        with no bridging — the point of redaction is that the
        connection itself becomes unanswerable.  Page rows no tenant
        references anymore are pruned, so the forgotten URLs do not
        survive in ``prov_pages``; the relevance index drops the
        documents in the same transaction, so ranked search cannot
        resurface them.  ``compact=True`` additionally sweeps ghost
        vocabulary rows in the same transaction — redaction is exactly
        the path that strands terms whose only documents vanished, and
        a redacted term lingering in ``prov_terms`` is itself a trace.
        Same barrier, cache, and quiescence contract as
        :meth:`expire_before`.
        """
        validate_user_id(user_id)
        shard = self.pool.shard_of(user_id)
        self.ingest.flush()  # journal barrier: checkpoint covers everything
        prefix = qualify(user_id, "")
        with self.pool.checkout(shard) as store, store.exclusive():
            graph = store.load_subgraph(prefix)
            new_graph, report = graph_forget_site(graph, site)
            doomed = set(graph.node_ids()) - set(new_graph.node_ids())
            store.delete_nodes_by_id(sorted(doomed))
            store.prune_orphan_pages()
            if compact:
                store.compact_terms()
            store.commit()
        self.ingest.drop_shard_caches(shard)
        self.cache.invalidate_user(user_id)
        self.cache.roll_epoch()
        # Redaction hides *what* was forgotten but not *that* a
        # redaction ran: the tombstone names the site (the redaction
        # request is itself an auditable act), not the removed rows.
        self.journal.record_tombstone(
            "forget_site",
            user=user_id,
            site=site,
            nodes_removed=report.nodes_removed,
            edges_removed=report.edges_removed,
        )
        return report

    # -- reads ------------------------------------------------------------------

    def ancestors(
        self, user_id: str, node_id: str, *, max_depth: int = 100
    ) -> list[tuple[str, int]]:
        """[(node_id, depth)] of *node_id*'s ancestors, nearest first."""
        return self._walk(user_id, "ancestors", node_id, max_depth)

    def descendants(
        self, user_id: str, node_id: str, *, max_depth: int = 100
    ) -> list[tuple[str, int]]:
        """[(node_id, depth)] of *node_id*'s descendants, nearest first."""
        return self._walk(user_id, "descendants", node_id, max_depth)

    def search(
        self, user_id: str, term: str, *, limit: int = 50
    ) -> list[str]:
        """*user_id*'s node ids matching *term*, newest first."""
        with self.tracer.trace("query.read", kind="search"):
            shard = self._drained_shard(user_id)

            def compute() -> list[str]:
                with self.pool.checkout(shard) as store:
                    hits = store.sql_text_search(
                        term, limit=limit, id_prefix=qualify(user_id, "")
                    )
                return [unqualify(user_id, hit) for hit in hits]

            # Copy out: cached lists must not be mutable by callers.
            return list(
                self.cache.get_or_compute(
                    user_id, "search", (term, limit), compute
                )
            )

    def stats(self, user_id: str) -> UserStats:
        """Per-user node/edge/interval counts."""
        shard = self._drained_shard(user_id)

        def compute() -> UserStats:
            with self.pool.checkout(shard) as store:
                nodes, edges, intervals = store.counts_for_id_prefix(
                    qualify(user_id, "")
                )
            return UserStats(
                user_id=user_id,
                shard=shard,
                nodes=nodes,
                edges=edges,
                intervals=intervals,
            )

        return self.cache.get_or_compute(user_id, "stats", (), compute)

    # -- cross-shard reads ------------------------------------------------------

    def global_search(
        self, term: str, *, limit: int = 50
    ) -> list[tuple[str, str]]:
        """``[(user_id, node_id)]`` matching *term* across every tenant.

        Scatter-gather: after a full pipeline barrier (global
        read-your-writes), every populated shard is searched
        concurrently on the query pool and the per-shard newest-first
        result lists are heap-merged by recency.  Results are cached
        service-scoped under the epoch admission policy: a hit may lag
        the corpus by at most ``cache_epoch_writes`` events and is
        dropped in a batch when the ingest epoch rolls
        (``cache_epoch_writes=None`` restores strict per-write
        freshness).  The barrier lives inside the compute — a cache hit
        must not pay a pipeline join.
        """

        def compute() -> list[tuple[str, str]]:
            self.ingest.flush()
            def search(shard: int):
                def task():
                    with self.pool.checkout(shard) as store:
                        return store.sql_text_search_scored(term, limit=limit)

                return task

            per_shard = scatter_gather(
                [search(shard) for shard in self.pool.populated_shards()],
                executor=self._query_pool(),
            )
            # Shard lists are each (ts DESC, id ASC); merging on the
            # same key gives a deterministic global recency order.
            merged, _consumed = ranked_merge(
                per_shard, limit, key=lambda row: (-row[1], row[0])
            )
            results: list[tuple[str, str]] = []
            for stored_id, _ts in merged:
                user_id, _sep, raw_id = stored_id.partition(USER_SEP)
                results.append((user_id, raw_id))
            return results

        with self.tracer.trace("search.global"):
            return list(
                self.cache.get_or_compute_global(
                    "global_search", (term, limit), compute
                )
            )

    def ranked_search(
        self,
        term: str,
        *,
        user_id: str | None = None,
        limit: int = 50,
        cursor: str | None = None,
    ) -> SearchPage:
        """Relevance-ranked, pageable search over the provenance corpus.

        The paper's recognition workload: query text is tokenized with
        the shared :mod:`repro.ir` analyzer, each shard orders its
        candidates from the incremental inverted index (BM25 blended
        with recency and per-tenant frecency — knobs in ``ranking=``),
        and pages merge across shards by blended score, best first.
        Every hit carries a snippet with the matched query terms
        highlighted (knobs in ``snippets=``) — users page until they
        *recognize* the right candidate, so the evidence of why each
        hit matched is part of the result, not a UI afterthought.

        With ``user_id`` the search is tenant-scoped (the user's shard,
        after a read-your-own-writes drain, cached per-user); without
        it the search is cross-tenant, scatter-gathered over every
        populated shard behind a full pipeline barrier and cached
        service-scoped under the epoch admission policy (see
        ``cache_epoch_writes``).  Either way the result is a
        :class:`~repro.service.search.SearchPage`: up to *limit*
        :class:`~repro.service.search.SearchHit` entries plus an opaque
        ``cursor`` token (``None`` once exhausted) to pass back for the
        next page.

        Cursor semantics: the token encodes a ``(score, node)``
        watermark per shard plus the cache epoch that minted it, and is
        integrity-checked — a tampered or wrong-query token raises
        :class:`~repro.errors.CursorError`, never a garbage page.
        Serving a page below a watermark reuses the shard's cached
        blended scan (a *continuation* — one snippet fetch per page,
        no re-ranking), so pages are disjoint and stable while the
        continuation state lives: until the ingest epoch rolls, or —
        tenant-scoped — until the tenant's own writes invalidate it.
        After either event the cursor transparently falls back to
        re-scoring: the resume re-anchors on the watermark hit's
        *current* rank (absolute scores shift with every idf/avgdl
        change, so the recorded score is only the fallback for an
        anchor that retention deleted), which means ordinary corpus
        growth neither repeats already-returned hits nor drops the
        tail — deeper pages may simply reflect newer data, and a
        stale page can never be served.  Cursors survive process
        restarts (they carry no in-memory references) and tolerate a
        changed ``limit`` between pages.

        Shards whose index is stale (migrated from a pre-index schema,
        or ingested with ``index=False``) rebuild transparently on
        first use.
        """
        if limit < 1:
            raise ConfigurationError("ranked_search limit must be >= 1")
        terms = tuple(query_terms(term))
        if not terms:
            # Stopword-only or empty query: nothing can match, and the
            # full pipeline barrier + shard fan-out (plus any lazy
            # index rebuild) must not be paid to learn that.  The page
            # is exhausted from birth — cursor=None — whatever token
            # the caller offered.
            return SearchPage(hits=(), cursor=None)
        fingerprint = query_fingerprint(terms, user_id)
        marks: dict[int, tuple[float, str] | None] = {}
        universe: list[int] | None = None
        if cursor is not None:
            # The minted epoch needs no explicit comparison here: all
            # continuation state is cached epoch-bound, so a cursor
            # from a rolled epoch misses the cache and re-scores below
            # its watermarks — a stale page is structurally unservable.
            _minted_epoch, marks, universe = decode_cursor(
                cursor, fingerprint
            )

        def exhausted(shard: int) -> bool:
            return shard in marks and marks[shard] is None

        if user_id is not None:
            shard = self._drained_shard(user_id)

            def compute() -> SearchPage:
                if exhausted(shard):
                    return SearchPage(hits=(), cursor=None)
                with self.pool.checkout(shard) as store:
                    window, remaining = self._shard_window(
                        store,
                        shard,
                        scope=user_id,
                        terms=terms,
                        limit=limit,
                        mark=marks.get(shard),
                        id_prefix=qualify(user_id, ""),
                    )
                    rows = attach_snippets(
                        store, window, list(terms), self.snippets
                    )
                new_marks = dict(marks)
                if rows:
                    last = rows[-1]
                    new_marks[shard] = (last[1], last[0])
                if remaining == 0:
                    new_marks[shard] = None
                hits = tuple(
                    SearchHit(
                        user_id=user_id,
                        nid=unqualify(user_id, stored_id),
                        score=score,
                        snippet=snippet,
                        matched_terms=matched,
                    )
                    for stored_id, score, snippet, matched in rows
                )
                return SearchPage(
                    hits=hits,
                    cursor=self._mint_cursor(
                        fingerprint, new_marks, [shard]
                    ),
                )

            with self.tracer.trace("search.ranked", scope="user"):
                page = self.cache.get_or_compute(
                    user_id,
                    "ranked_page",
                    (terms, limit, tuple(sorted(marks.items()))),
                    compute,
                    epoch_bound=True,
                )
            self._metric_ranked_pages.inc()
            return page

        page_key = (
            terms,
            limit,
            tuple(sorted(marks.items())),
            tuple(universe) if universe is not None else None,
        )

        def compute() -> SearchPage:
            self.ingest.flush()
            # A cursor pins the shard set its pagination began over:
            # a shard populated mid-pagination (a new tenant's first
            # write) joins fresh searches, never an in-flight cursor
            # chain — pages stay a snapshot, not a moving target.
            shards = (
                universe
                if universe is not None
                else self.pool.populated_shards()
            )
            active = [s for s in shards if not exhausted(s)]
            self._metric_shards_merged.observe(len(active))

            def page_of(shard: int):
                def task():
                    with self.pool.checkout(shard) as store:
                        return self._shard_window(
                            store,
                            shard,
                            scope=GLOBAL_SCOPE,
                            terms=terms,
                            limit=limit,
                            mark=marks.get(shard),
                            id_prefix=None,
                        )

                return task

            shard_pages = scatter_gather(
                [page_of(shard) for shard in active],
                executor=self._query_pool(),
            )
            # Each shard's rows are (score DESC, id ASC); merging on
            # the same key gives a deterministic global relevance
            # order, and the consumed counts advance each shard's
            # watermark to its last *emitted* hit only.
            merged, consumed = ranked_merge(
                [rows for rows, _remaining in shard_pages],
                limit,
                key=lambda row: (-row[1], row[0]),
            )
            new_marks = dict(marks)
            # Snippets only for the hits this page actually emits —
            # each shard's consumed prefix — never the full fetched
            # windows (shards x limit candidates for limit hits).
            decorated: dict[str, tuple[str, tuple[str, ...]]] = {}
            for shard, (rows, remaining), took in zip(
                active, shard_pages, consumed
            ):
                if took:
                    last = rows[took - 1]
                    new_marks[shard] = (last[1], last[0])
                    with self.pool.checkout(shard) as store:
                        for stored_id, _score, snippet, matched in (
                            attach_snippets(
                                store, rows[:took], list(terms),
                                self.snippets,
                            )
                        ):
                            decorated[stored_id] = (snippet, matched)
                if took == len(rows) and remaining == 0:
                    new_marks[shard] = None
            hits = []
            for stored_id, score in merged:
                user, _sep, raw_id = stored_id.partition(USER_SEP)
                snippet, matched = decorated[stored_id]
                hits.append(
                    SearchHit(
                        user_id=user,
                        nid=raw_id,
                        score=score,
                        snippet=snippet,
                        matched_terms=matched,
                    )
                )
            return SearchPage(
                hits=tuple(hits),
                cursor=self._mint_cursor(fingerprint, new_marks, shards),
            )

        with self.tracer.trace("search.ranked", scope="global"):
            page = self.cache.get_or_compute_global(
                "ranked_page", page_key, compute
            )
        self._metric_ranked_pages.inc()
        return page

    def _shard_window(
        self,
        store,
        shard: int,
        *,
        scope: str,
        terms: tuple[str, ...],
        limit: int,
        mark: tuple[float, str] | None,
        id_prefix: str | None,
    ) -> tuple[list[tuple[str, float]], int]:
        """One shard's continuation window: ``([(stored_id, score)],
        remaining)``.

        *Rows* are best-first — at most *limit*, strictly below *mark*
        — and *remaining* counts the hits still beyond the window (0 =
        this window drains the shard).  The shard's full blended scan
        is computed once and cached epoch-bound in *scope*, so serving
        a later page costs one watermark search plus the caller's
        snippet fetch: a continuation, never a re-rank.  Scans larger
        than ``scan_cache_rows`` are *not* cached — the query cache's
        capacity counts entries, not bytes, and a handful of
        broad-term scans must not pin unbounded memory; such queries
        stay correct (watermarks still apply) but re-score per page.
        """

        scanned = False

        def compute_scan() -> list[tuple[str, float]]:
            nonlocal scanned
            scanned = True
            ensure_index(store)
            with self.tracer.trace("search.scan", shard=shard):
                return shard_ranked_scan(
                    store,
                    list(terms),
                    params=self.ranking,
                    id_prefix=id_prefix,
                )

        scan = self.cache.get_or_compute(
            scope, "ranked_scan", (terms, shard), compute_scan,
            epoch_bound=True,
            cache_when=lambda rows: len(rows) <= self.scan_cache_rows,
        )
        # Scan vs. continuation is *the* paged-search health signal: a
        # later page served off the cached scan is a continuation; a
        # re-run of the scoring scan (cold cache, epoch roll, tenant
        # write) is not.
        if scanned:
            self._metric_scans.inc()
        else:
            self._metric_continuations.inc()
        return slice_after(scan, mark, limit)

    def _mint_cursor(
        self,
        fingerprint: str,
        marks: dict[int, tuple[float, str] | None],
        shards: list[int],
    ) -> str | None:
        """The continuation token after a page, or ``None`` if every
        shard of the pagination's universe is drained (last page)."""
        if all(shard in marks and marks[shard] is None for shard in shards):
            return None
        return encode_cursor(self.cache.epoch, fingerprint, marks, shards)

    def aggregate_stats(self) -> AggregateStats:
        """Whole-corpus totals, one concurrent counting pass per shard.

        The pipeline barrier runs inside the compute; a cache hit
        skips the flush entirely and follows the service-scope epoch
        admission policy (bounded staleness, see ``cache_epoch_writes``).
        """

        def compute() -> AggregateStats:
            self.ingest.flush()
            def count(shard: int):
                def task():
                    with self.pool.checkout(shard) as store:
                        return store.sql_counts()

                return task

            populated = self.pool.populated_shards()
            counts = scatter_gather(
                [count(shard) for shard in populated],
                executor=self._query_pool(),
            )
            return AggregateStats(
                shards=self.pool.shards,
                populated_shards=len(populated),
                nodes=sum(row[0] for row in counts),
                edges=sum(row[1] for row in counts),
                intervals=sum(row[2] for row in counts),
                pages=sum(row[3] for row in counts),
            )

        return self.cache.get_or_compute_global("aggregate_stats", (), compute)

    def users(self) -> list[str]:
        """User ids seen by this service instance, sorted."""
        return sorted(self._users)

    def service_stats(self) -> ServiceStats:
        return ServiceStats(
            users=len(self._users),
            events_submitted=self.ingest.stats.submitted,
            events_applied=self.ingest.stats.applied,
            flushes=self.ingest.stats.flushes,
            replayed=self.ingest.stats.replayed,
            quarantined=self.ingest.stats.quarantined,
            cache=self.cache.stats(),
            pool=self.pool.stats(),
        )

    # -- observability ----------------------------------------------------------

    def metrics_snapshot(self) -> dict:
        """A JSON-serialisable snapshot of every service metric.

        ``{"counters": {...}, "gauges": {...}, "histograms": {...}}`` —
        histograms summarize as count/sum/min/max plus estimated
        p50/p95/p99 (fixed-bucket linear interpolation); labeled
        counters render per-label series as ``name{label=value}`` keys
        next to the grand total.  Process-mode worker metrics are
        already folded in: children ship deltas on their batch
        acknowledgements, so the snapshot covers both worker substrates
        identically.  Deliberately transport-agnostic — a future HTTP
        adapter can serve this dict per endpoint unchanged.

        Point-in-time gauges (queue depth, open stores, cache size) are
        refreshed at snapshot time; with ``metrics=False`` the snapshot
        is empty.
        """
        if self.metrics.enabled:
            self.journal.flush_metric_tallies()
            self.metrics.gauge("ingest.pending").set(self.ingest.pending())
            self.metrics.gauge("pool.open_stores").set(self.pool.open_count)
            self.metrics.gauge("cache.size").set(len(self.cache))
            self.metrics.gauge("cache.epoch").set(self.cache.epoch)
        return self.metrics.snapshot()

    def health(self, *, max_tenants: int = 100) -> ServiceHealth:
        """Per-shard / per-tenant ingest liveness rollup.

        Cheap by construction — reads the pipeline's existing
        bookkeeping (queue depths, last-flush stamps, tenant activity)
        plus the dead-letter sidecar; it never drains, flushes, or
        touches shard stores, so probing it cannot perturb what it
        measures.  ``status`` goes ``"degraded"`` when quarantined
        events await redrive or a shard is poisoned by an undrained
        apply failure.  *max_tenants* caps the tenant rollup, most
        recently active first.
        """
        shard_ages, tenant_activity = self.ingest.activity_snapshot()
        poisoned = set(self.ingest.poisoned_shards())
        shards = []
        for shard in sorted(set(shard_ages) | poisoned | {
            shard
            for shard in range(self.pool.shards)
            if self.ingest.pending(shard)
        }):
            shards.append(
                ShardHealth(
                    shard=shard,
                    queue_depth=self.ingest.pending(shard),
                    last_flush_age_s=shard_ages.get(shard),
                    poisoned=shard in poisoned,
                )
            )
        recent = sorted(
            tenant_activity.items(), key=lambda item: item[1][1]
        )[:max_tenants]
        tenants = tuple(
            TenantHealth(
                user_id=user,
                shard=self.pool.shard_of(user),
                events_submitted=submitted,
                last_write_age_s=age,
            )
            for user, (submitted, age) in recent
        )
        deadletters = len(self.journal.deadlettered())
        cache_stats = self.cache.stats()
        return ServiceHealth(
            status="degraded" if deadletters or poisoned else "ok",
            pending=self.ingest.pending(),
            deadletters=deadletters,
            journal_lag=max(
                0, self.journal.last_seq - self.journal.flushed_seq
            ),
            cache_hit_rate=cache_stats.hit_rate,
            cache_epoch=cache_stats.epoch,
            shards=tuple(shards),
            tenants=tenants,
        )

    def slow_ops(self) -> list[dict]:
        """Recorded slow-op breakdowns, oldest first.

        Populated only when the service was built with ``slow_op_ms``:
        each record is ``{"op", "ms", "tags", "spans"}`` with nested
        child spans showing where the time went.  The log is a bounded
        ring (``slow_op_log`` records); reading does not clear it.
        """
        return self.tracer.slow_ops()

    # -- integrity & audit ------------------------------------------------------

    def verify_integrity(self) -> IntegrityReport:
        """Walk the whole journal and verify its tamper-evident record.

        Flushes staged records and re-attests the manifest first (so
        the walk always ends on signed ground), then recomputes every
        record's chain hash, checks each sealed segment's digest, the
        tombstone chain, and the manifest's per-tenant roots.  Returns
        an :class:`~repro.service.integrity.IntegrityReport`; on
        corruption ``first_error`` pinpoints the first bad byte as
        ``(segment, offset, reason)``.  Read-only apart from the
        re-attestation — verification never "repairs" anything.

        Raises :class:`~repro.errors.ConfigurationError` when the
        service was built with ``integrity=False``.
        """
        with self.tracer.trace("integrity.verify"):
            return self.journal.verify_integrity()

    def audit_report(self, user_id: str) -> dict:
        """Auditable case report for *user_id*.

        Timeline plus per-artifact chain of custody, every node hashed,
        the subgraph digested through the canonical export form, the
        journal verification result embedded, and the report closed
        with its own digest — see :mod:`repro.service.audit`.  The
        report is byte-stable: the same history always produces the
        same canonical JSON.
        """
        with self.tracer.trace("integrity.audit", user=user_id):
            return build_case_report(self, user_id)

    # -- lifecycle --------------------------------------------------------------

    def close(self, *, flush: bool = True) -> None:
        """Shut down; ``flush=False`` abandons buffers (crash simulation —
        the journal still holds everything unflushed for replay).

        Handles are released even when the final flush raises; the
        journal keeps the unflushed events for the next open's replay.
        """
        try:
            if flush:
                self.ingest.flush()
        finally:
            if self._fanout is not None:
                self._fanout.shutdown(wait=True)
                self._fanout = None
            self.ingest.close()
            self.pool.close()
            self._release_lock()
            if self._tmp is not None:
                self._tmp.cleanup()
                self._tmp = None

    def __enter__(self) -> "ProvenanceService":
        return self

    def __exit__(self, exc_type, *exc_info: object) -> None:
        # Don't let a failing final flush mask the in-block exception;
        # the journal preserves whatever the skipped flush would have
        # written.
        self.close(flush=exc_type is None)

    # -- internals --------------------------------------------------------------

    def _acquire_lock(self) -> None:
        """Exclusive per-root lock (pid file).

        Two live services on one root would allocate the same journal
        sequences and overwrite each other's edges across tenants, so
        the second open must fail loudly.  A lock left by a dead
        process (crash) is stolen.
        """
        lock_path = os.path.join(self.root, "service.lock")
        for _attempt in range(10):
            try:
                fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = self._lock_holder(lock_path)
                if holder is not None:
                    raise ConfigurationError(
                        f"service root {self.root!r} is already open in"
                        f" process {holder}; concurrent services on one"
                        f" root would corrupt shared shards"
                    )
                try:
                    os.unlink(lock_path)  # stale lock from a dead process
                except FileNotFoundError:
                    pass
                continue
            os.write(fd, str(os.getpid()).encode("ascii"))
            os.close(fd)
            self._lock_path = lock_path
            return
        raise ConfigurationError(
            f"could not acquire the service lock at {lock_path!r}"
        )

    @staticmethod
    def _lock_holder(lock_path: str) -> int | None:
        """The live pid holding *lock_path*, or None if stale/unreadable."""
        try:
            with open(lock_path, "r", encoding="ascii") as handle:
                pid = int(handle.read().strip() or 0)
        except (FileNotFoundError, ValueError):
            return None
        if pid <= 0:
            return None
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return None
        except PermissionError:
            return pid  # alive, owned by someone else
        return pid

    def _release_lock(self) -> None:
        if self._lock_path is not None:
            try:
                os.unlink(self._lock_path)
            except FileNotFoundError:
                pass
            self._lock_path = None

    def _check_layout(self, shards: int) -> None:
        """Pin the shard count to the service root.

        Hash routing is a function of the shard count; reopening an
        existing root with a different count would silently strand any
        tenant whose shard moved.  Refuse instead.
        """
        layout_path = os.path.join(self.root, "service.json")
        if os.path.exists(layout_path):
            with open(layout_path, "r", encoding="utf-8") as handle:
                layout = json.load(handle)
            if layout.get("shards") != shards:
                raise ConfigurationError(
                    f"service root {self.root!r} was created with"
                    f" {layout.get('shards')} shards; reopening with"
                    f" {shards} would orphan re-routed tenants"
                )
        else:
            with open(layout_path, "w", encoding="utf-8") as handle:
                json.dump({"shards": shards}, handle)

    def _query_pool(self) -> ThreadPoolExecutor:
        """The lazily started scatter-gather executor for cross-shard reads."""
        with self._fanout_lock:
            if self._fanout is None:
                self._fanout = ThreadPoolExecutor(
                    max_workers=min(self.pool.shards, 16),
                    thread_name_prefix="prov-query",
                )
            return self._fanout

    def _drained_shard(self, user_id: str) -> int:
        """The user's shard, with read-your-writes freshness.

        Drains the caller's shard synchronously (the query must see the
        caller's own acknowledged writes); other shards' buffers are
        handed to the background flush workers without waiting, which
        keeps the journal checkpoint moving — a shard whose buffer
        never drained would otherwise pin the checkpoint and block
        journal compaction indefinitely.  In serial mode (no workers)
        this degrades to a full drain, as before.

        Returns the shard index, not a store: readers must take the
        store through :meth:`StorePool.checkout` for the duration of
        their SQL so LRU eviction cannot close it under them.
        """
        validate_user_id(user_id)
        shard = self.pool.shard_of(user_id)
        if self.ingest.pending():
            self.ingest.drain_for_read(shard)
        return shard

    def _walk(
        self, user_id: str, direction: str, node_id: str, max_depth: int
    ) -> list[tuple[str, int]]:
        with self.tracer.trace("query.read", kind=direction):
            return self._walk_traced(user_id, direction, node_id, max_depth)

    def _walk_traced(
        self, user_id: str, direction: str, node_id: str, max_depth: int
    ) -> list[tuple[str, int]]:
        shard = self._drained_shard(user_id)

        def compute() -> list[tuple[str, int]]:
            with self.pool.checkout(shard) as store:
                walk = (
                    store.sql_ancestors
                    if direction == "ancestors"
                    else store.sql_descendants
                )
                try:
                    found = walk(
                        qualify(user_id, node_id), max_depth=max_depth
                    )
                except UnknownNodeError:
                    raise UnknownNodeError(node_id) from None
            return [
                (unqualify(user_id, found_id), depth)
                for found_id, depth in found
            ]

        return list(
            self.cache.get_or_compute(
                user_id, direction, (node_id, max_depth), compute
            )
        )
