"""Concurrency primitives for the service's two hot paths.

**Write path** — :class:`ShardWorkerPool` runs N flush workers; every
shard maps to exactly one worker (``shard % workers``), so batches for
one shard apply strictly in dispatch order while different shards drain
concurrently.  SQLite's one-writer-at-a-time limit therefore applies
*per shard file*, not globally — the single largest ingest speedup
available once users are hash-sharded across stores.

Failure discipline: a batch that raises poisons its shard — later
batches for that shard are diverted, unapplied, into the failure list
(applying them would reorder writes past the hole).  :meth:`barrier`
callers collect the failures (batches in dispatch order, with the
original exception) and decide: the ingest pipeline requeues them into
its buffers and re-raises, keeping every event pending in-process while
the journal still holds them for crash replay.

**Read path** — :func:`scatter_gather` fans one task per shard across a
thread pool and returns results in task order, the primitive under
cross-shard ``global_search`` / ``aggregate_stats``.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError

_STOP = object()


@dataclass
class ShardFailure:
    """What a poisoned shard has accumulated by barrier time."""

    shard: int
    error: BaseException
    #: Batches in dispatch order: the one that raised, then every batch
    #: diverted (unapplied) behind it.
    batches: list[Any] = field(default_factory=list)


class ShardWorkerPool:
    """N flush workers with shard-affine, order-preserving dispatch."""

    def __init__(
        self,
        apply: Callable[[int, Any], None],
        *,
        workers: int,
        name: str = "shard-flush",
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self._apply = apply
        self._queues: list[SimpleQueue] = [SimpleQueue() for _ in range(workers)]
        self._threads: list[threading.Thread | None] = [None] * workers
        self._name = name
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._outstanding = 0
        self._outstanding_by_shard: dict[int, int] = {}
        self._failures: dict[int, ShardFailure] = {}
        self._closed = False

    @property
    def workers(self) -> int:
        return len(self._queues)

    def worker_of(self, shard: int) -> int:
        """The worker index owning *shard* (stable, order-preserving)."""
        return shard % len(self._queues)

    # -- dispatch ---------------------------------------------------------------

    def dispatch(self, shard: int, batch: Any) -> None:
        """Queue *batch* for *shard*'s worker; returns immediately."""
        index = self.worker_of(shard)
        with self._lock:
            if self._closed:
                raise ConfigurationError("worker pool is closed")
            self._outstanding += 1
            self._outstanding_by_shard[shard] = (
                self._outstanding_by_shard.get(shard, 0) + 1
            )
            self._ensure_worker(index)
        self._queues[index].put((shard, batch))

    def _ensure_worker(self, index: int) -> None:
        thread = self._threads[index]
        if thread is None or not thread.is_alive():
            thread = threading.Thread(
                target=self._loop,
                args=(self._queues[index],),
                name=f"{self._name}-{index}",
                daemon=True,
            )
            self._threads[index] = thread
            thread.start()

    def _loop(self, queue: SimpleQueue) -> None:
        while True:
            job = queue.get()
            if job is _STOP:
                return
            shard, batch = job
            try:
                # The poison check and the diversion must share the lock
                # with drain_failures: an unlocked append could land on a
                # ShardFailure a barrier just drained, orphaning the
                # batch (never applied, never requeued) and pinning the
                # checkpoint at its first sequence forever.
                with self._lock:
                    failure = self._failures.get(shard)
                    if failure is not None:
                        # Order past the hole is unrecoverable mid-
                        # flight; park the batch for the barrier.
                        failure.batches.append(batch)
                        diverted = True
                    else:
                        diverted = False
                if not diverted:
                    try:
                        self._apply(shard, batch)
                    except BaseException as exc:  # noqa: BLE001 — reported at barrier
                        with self._lock:
                            self._failures[shard] = ShardFailure(
                                shard=shard, error=exc, batches=[batch]
                            )
            finally:
                with self._done:
                    self._outstanding -= 1
                    left = self._outstanding_by_shard[shard] - 1
                    if left:
                        self._outstanding_by_shard[shard] = left
                    else:
                        del self._outstanding_by_shard[shard]
                    self._done.notify_all()

    # -- synchronization --------------------------------------------------------

    def barrier(self, shard: int | None = None) -> None:
        """Block until every dispatched batch (or *shard*'s) is settled.

        Settled means applied or parked in a failure; inspect
        :meth:`drain_failures` afterwards.
        """
        with self._done:
            if shard is None:
                self._done.wait_for(lambda: self._outstanding == 0)
            else:
                self._done.wait_for(
                    lambda: self._outstanding_by_shard.get(shard, 0) == 0
                )

    def drain_failures(
        self, shard: int | None = None
    ) -> list[ShardFailure]:
        """Remove and return failures (all, or one shard's), unpoisoning
        the affected shards so requeued batches can be retried."""
        with self._lock:
            if shard is None:
                failures = [self._failures[key] for key in sorted(self._failures)]
                self._failures.clear()
            else:
                found = self._failures.pop(shard, None)
                failures = [found] if found is not None else []
        return failures

    def has_failures(self) -> bool:
        with self._lock:
            return bool(self._failures)

    def poisoned(self, shard: int) -> bool:
        """True while *shard* has an undrained failure parked."""
        with self._lock:
            return shard in self._failures

    def close(self) -> None:
        """Stop the workers after their queues drain."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for queue in self._queues:
            queue.put(_STOP)
        for thread in self._threads:
            if thread is not None and thread.is_alive():
                thread.join()


def scatter_gather(
    tasks: Sequence[Callable[[], Any]],
    *,
    executor: ThreadPoolExecutor | None = None,
    max_workers: int | None = None,
) -> list[Any]:
    """Run *tasks* concurrently; results in task order.

    Waits for every task even when one fails (a half-finished fan-out
    would leave workers racing the caller's next step), then re-raises
    the first exception in task order.  Pass a long-lived *executor* on
    hot paths to skip per-call thread spawning.
    """
    if not tasks:
        return []
    if len(tasks) == 1:  # no threads for the degenerate fan-out
        return [tasks[0]()]
    if executor is not None:
        futures = [executor.submit(task) for task in tasks]
    else:
        own = ThreadPoolExecutor(
            max_workers=max_workers or min(len(tasks), 16),
            thread_name_prefix="scatter",
        )
        try:
            futures = [own.submit(task) for task in tasks]
        finally:
            own.shutdown(wait=False)
    results: list[Any] = []
    first_error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results
