"""Concurrency primitives for the service's two hot paths.

**Write path** — two interchangeable substrates behind one contract:

:class:`ShardWorkerPool` runs N flush *threads*; every shard maps to
exactly one worker (``shard % workers``), so batches for one shard
apply strictly in dispatch order while different shards drain
concurrently.  SQLite's one-writer-at-a-time limit therefore applies
*per shard file*, not globally — the single largest ingest speedup
available once users are hash-sharded across stores.  Threads overlap
shard I/O (fsync, WAL writes) but the GIL serializes the CPU side.

:class:`ShardWorkerProcessPool` runs N shard worker *processes* with
the same shard-affine, order-preserving dispatch — each worker process
owns its shards' SQLite files exclusively and applies batches with its
own interpreter, so CPU-bound ingest scales past the GIL.  The durable
hand-off stays the group-commit journal: the parent only dispatches a
batch after its events are journal-synced, workers acknowledge applied
sequence numbers over a result queue, and the checkpoint advances only
on acknowledgement — a killed worker loses nothing (the parent requeues
its unacknowledged batches and re-applies; rows are idempotent, so even
a committed-but-unacknowledged batch lands exactly once).

Failure discipline (both substrates): a batch that raises poisons its
shard — later batches for that shard are diverted, unapplied, into the
failure list (applying them would reorder writes past the hole).
:meth:`barrier` callers collect the failures (batches in dispatch
order, with the original exception) and decide: the ingest pipeline
requeues them into its buffers and re-raises, keeping every event
pending in-process while the journal still holds them for crash replay.

**Read path** — :func:`scatter_gather` fans one task per shard across a
thread pool and returns results in task order, the primitive under
cross-shard ``global_search`` / ``aggregate_stats`` /
``ranked_search``; :func:`ranked_merge` heap-merges the per-shard
best-first result lists — whole search hits, not bare ids — into one
global page and reports how much of each shard's list the page
consumed, which is what score-bounded pagination needs to advance each
shard's continuation watermark.

Concurrency contract: the worker pools are driven by one pipeline
thread at a time (the ingest pipeline serializes dispatch/barrier
under its own lock); :func:`scatter_gather` tasks run on arbitrary
pool threads concurrently with flush workers, so they must only touch
stores through checkout + read connections.  :func:`ranked_merge` is
pure computation — no locks, safe anywhere.
"""

from __future__ import annotations

import heapq
import multiprocessing
import queue as queue_module
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from queue import SimpleQueue
from typing import Any, Callable, Sequence

from repro.errors import (
    ConfigurationError,
    RemoteApplyError,
    ReproError,
    WorkerCrashedError,
)
from repro.service.metrics import NULL_REGISTRY

_STOP = object()


@dataclass
class ShardFailure:
    """What a poisoned shard has accumulated by barrier time."""

    shard: int
    error: BaseException
    #: Batches in dispatch order: the one that raised, then every batch
    #: diverted (unapplied) behind it.
    batches: list[Any] = field(default_factory=list)


class ShardWorkerPool:
    """N flush workers with shard-affine, order-preserving dispatch."""

    def __init__(
        self,
        apply: Callable[[int, Any], None],
        *,
        workers: int,
        name: str = "shard-flush",
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        self._apply = apply
        self._queues: list[SimpleQueue] = [SimpleQueue() for _ in range(workers)]
        self._threads: list[threading.Thread | None] = [None] * workers
        self._name = name
        self._lock = threading.Lock()
        self._done = threading.Condition(self._lock)
        self._outstanding = 0
        self._outstanding_by_shard: dict[int, int] = {}
        self._failures: dict[int, ShardFailure] = {}
        self._closed = False

    @property
    def workers(self) -> int:
        return len(self._queues)

    def worker_of(self, shard: int) -> int:
        """The worker index owning *shard* (stable, order-preserving)."""
        return shard % len(self._queues)

    # -- dispatch ---------------------------------------------------------------

    def dispatch(self, shard: int, batch: Any) -> None:
        """Queue *batch* for *shard*'s worker; returns immediately."""
        index = self.worker_of(shard)
        with self._lock:
            if self._closed:
                raise ConfigurationError("worker pool is closed")
            self._outstanding += 1
            self._outstanding_by_shard[shard] = (
                self._outstanding_by_shard.get(shard, 0) + 1
            )
            self._ensure_worker(index)
        self._queues[index].put((shard, batch))

    def _ensure_worker(self, index: int) -> None:
        thread = self._threads[index]
        if thread is None or not thread.is_alive():
            thread = threading.Thread(
                target=self._loop,
                args=(self._queues[index],),
                name=f"{self._name}-{index}",
                daemon=True,
            )
            self._threads[index] = thread
            thread.start()

    def _loop(self, queue: SimpleQueue) -> None:
        while True:
            job = queue.get()
            if job is _STOP:
                return
            shard, batch = job
            try:
                # The poison check and the diversion must share the lock
                # with drain_failures: an unlocked append could land on a
                # ShardFailure a barrier just drained, orphaning the
                # batch (never applied, never requeued) and pinning the
                # checkpoint at its first sequence forever.
                with self._lock:
                    failure = self._failures.get(shard)
                    if failure is not None:
                        # Order past the hole is unrecoverable mid-
                        # flight; park the batch for the barrier.
                        failure.batches.append(batch)
                        diverted = True
                    else:
                        diverted = False
                if not diverted:
                    try:
                        self._apply(shard, batch)
                    except BaseException as exc:  # noqa: BLE001 — reported at barrier
                        with self._lock:
                            self._failures[shard] = ShardFailure(
                                shard=shard, error=exc, batches=[batch]
                            )
            finally:
                with self._done:
                    self._outstanding -= 1
                    left = self._outstanding_by_shard[shard] - 1
                    if left:
                        self._outstanding_by_shard[shard] = left
                    else:
                        del self._outstanding_by_shard[shard]
                    self._done.notify_all()

    # -- synchronization --------------------------------------------------------

    def barrier(self, shard: int | None = None) -> None:
        """Block until every dispatched batch (or *shard*'s) is settled.

        Settled means applied or parked in a failure; inspect
        :meth:`drain_failures` afterwards.
        """
        with self._done:
            if shard is None:
                self._done.wait_for(lambda: self._outstanding == 0)
            else:
                self._done.wait_for(
                    lambda: self._outstanding_by_shard.get(shard, 0) == 0
                )

    def drain_failures(
        self, shard: int | None = None
    ) -> list[ShardFailure]:
        """Remove and return failures (all, or one shard's), unpoisoning
        the affected shards so requeued batches can be retried."""
        with self._lock:
            if shard is None:
                failures = [self._failures[key] for key in sorted(self._failures)]
                self._failures.clear()
            else:
                found = self._failures.pop(shard, None)
                failures = [found] if found is not None else []
        return failures

    def has_failures(self) -> bool:
        with self._lock:
            return bool(self._failures)

    def poisoned(self, shard: int) -> bool:
        """True while *shard* has an undrained failure parked."""
        with self._lock:
            return shard in self._failures

    def close(self) -> None:
        """Stop the workers after their queues drain."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for queue in self._queues:
            queue.put(_STOP)
        for thread in self._threads:
            if thread is not None and thread.is_alive():
                thread.join()


def _shard_process_main(
    index, shard_paths, tasks, results, index_enabled, metrics_enabled=False
):
    """Entry point of one shard worker process.

    Owns the stores for every shard in *shard_paths* exclusively: no
    other process writes those files while this worker lives.  Spawn-
    safe (module-level, picklable arguments only).  Protocol, all over
    ``multiprocessing`` queues:

    * ``("apply", job_id, shard, [(seq, line)])`` — each *line* is the
      event's journal JSON text (the submit-time encoding, reused so
      the parent never re-serializes); decode and apply the batch,
      then acknowledge ``("ok", index, job_id, shard, seq, delta)``
      with the batch's highest applied sequence number and the
      worker's metric delta since its previous acknowledgement (or
      ``None`` when metrics are disabled / nothing moved).  Error
      acknowledgements carry a trailing delta too — a failed apply
      still books failure counters child-side.  Piggybacking on the
      ack is what keeps process mode out of the metrics blind spot
      without a second channel: the parent merges a delta only when
      the ack settles its job, so a delta can never count twice.
    * a failed apply poisons the shard worker-side: the error is
      reported once and every later batch for that shard is acknowledged
      ``("diverted", ...)`` unapplied, preserving per-shard order past
      the hole exactly like the thread pool.
    * ``("unpoison", shard)`` — the parent drained the failure and will
      redispatch; FIFO queueing guarantees this arrives after every
      batch that had to divert and before every retried one.
    * ``("drop_caches", shard)`` — the parent ran row surgery
      (retention) on the shard file; forget the store's interned-row
      caches before the next batch writes against deleted rowids.
    * ``("stop",)`` — commit nothing further, close the stores, exit.
    """
    import json as json_module

    from repro.core.store import ProvenanceStore
    from repro.service.apply import apply_event_batch
    from repro.service.events import decode_event
    from repro.service.metrics import MetricsRegistry

    registry = MetricsRegistry() if metrics_enabled else NULL_REGISTRY
    stores = {}
    poisoned = set()
    try:
        while True:
            message = tasks.get()
            kind = message[0]
            if kind == "stop":
                return
            if kind == "unpoison":
                poisoned.discard(message[1])
                continue
            if kind == "drop_caches":
                store = stores.get(message[1])
                if store is not None:
                    store.drop_row_caches()
                continue
            _kind, job_id, shard, encoded = message
            if shard in poisoned:
                results.put(("diverted", index, job_id, shard, 0, None))
                continue
            try:
                store = stores.get(shard)
                if store is None:
                    store = stores[shard] = ProvenanceStore(
                        shard_paths[shard], metrics=registry
                    )
                batch = [
                    (seq, decode_event(json_module.loads(line)))
                    for seq, line in encoded
                ]
                apply_event_batch(
                    store, batch, index=index_enabled, metrics=registry
                )
            except BaseException as exc:  # noqa: BLE001 — reported to the parent
                poisoned.add(shard)
                results.put(
                    (
                        "error",
                        index,
                        job_id,
                        shard,
                        f"{type(exc).__name__}: {exc}",
                        isinstance(exc, ReproError),
                        registry.drain_delta(),
                    )
                )
            else:
                results.put(
                    (
                        "ok",
                        index,
                        job_id,
                        shard,
                        encoded[-1][0],
                        registry.drain_delta(),
                    )
                )
    finally:
        for store in stores.values():
            store.close()


class ShardWorkerProcessPool:
    """N shard worker *processes* behind the :class:`ShardWorkerPool` contract.

    Same shard-affine dispatch (``shard % workers``), same
    barrier/failure discipline — but batches apply in worker processes
    that own their shards' SQLite files exclusively, so CPU-bound
    ingest is not serialized by the parent's GIL.  Events cross the
    process boundary as their journal JSON lines — the submit-time
    encoding, handed over by the pipeline so the parent never pays a
    second serialization; the parent keeps the original batch objects
    for requeue accounting and calls *on_applied* with them as
    acknowledgements arrive.

    Crash containment: a collector thread drains the result queue and
    watches worker liveness.  A worker that dies with unacknowledged
    batches turns them into :class:`ShardFailure` entries (error =
    :class:`~repro.errors.WorkerCrashedError`, batches in dispatch
    order) and its slot respawns — with a **fresh** task queue, so a
    half-consumed queue can never double-deliver — on the next
    dispatch.  The journal still holds every affected event, and
    store rows are idempotent, so retried batches land exactly once
    even when the worker died after committing but before
    acknowledging.
    """

    #: spawn, not fork: the parent runs submitter/flush threads, and a
    #: forked child inheriting their held locks (or the parent's SQLite
    #: handles) would be undefined behavior on both counts.
    _START_METHOD = "spawn"

    def __init__(
        self,
        shard_paths: dict[int, str],
        on_applied: Callable[[int, Any], None],
        *,
        workers: int,
        name: str = "shard-proc",
        index_enabled: bool = True,
        metrics: object = NULL_REGISTRY,
    ) -> None:
        if workers < 1:
            raise ConfigurationError("workers must be >= 1")
        for shard, path in shard_paths.items():
            if path == ":memory:":
                raise ConfigurationError(
                    f"shard {shard} is in-memory; process workers need"
                    f" disk-backed shard files"
                )
        self._shard_paths = dict(shard_paths)
        self._on_applied = on_applied
        self._name = name
        self._index_enabled = index_enabled
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        #: Workers only pay for child-side instrumentation when the
        #: parent can actually use the deltas.
        self._metrics_enabled = bool(getattr(self._metrics, "enabled", False))
        self._ctx = multiprocessing.get_context(self._START_METHOD)
        self._results = self._ctx.Queue()
        self._task_queues: list[Any] = [None] * workers
        self._procs: list[Any] = [None] * workers
        # Reentrant: the collector reaps dead workers (which notifies
        # the barrier condition, backed by this same lock) while already
        # holding it.
        self._lock = threading.RLock()
        self._done = threading.Condition(self._lock)
        self._outstanding = 0
        self._outstanding_by_shard: dict[int, int] = {}
        self._failures: dict[int, ShardFailure] = {}
        #: job_id -> (shard, batch) per worker; insertion order is
        #: dispatch order, which crash handling relies on.
        self._assigned: list[dict[int, tuple[int, Any]]] = [
            {} for _ in range(workers)
        ]
        self._next_job = 0
        self._collector: threading.Thread | None = None
        self._closed = False

    @property
    def workers(self) -> int:
        return len(self._procs)

    def worker_of(self, shard: int) -> int:
        """The worker index owning *shard* (stable, order-preserving)."""
        return shard % len(self._procs)

    def processes(self) -> list[Any]:
        """Live worker process handles (tests kill these)."""
        with self._lock:
            return [proc for proc in self._procs if proc is not None]

    # -- dispatch ---------------------------------------------------------------

    def dispatch(
        self, shard: int, batch: Any, encoded: list | None = None
    ) -> None:
        """Queue *batch* (``[(seq, event)]``) for *shard*'s worker.

        *encoded* is the batch in journal-JSON lines (``[(seq, line)]``)
        when the caller still holds the submit-time encoding — the
        ingest pipeline does, which spares the parent a per-event
        re-serialization on every hand-off.  Without it the batch is
        encoded here.
        """
        from repro.service.events import encode_event_json

        index = self.worker_of(shard)
        if encoded is None:
            encoded = [
                (seq, encode_event_json(event)) for seq, event in batch
            ]
        with self._lock:
            if self._closed:
                raise ConfigurationError("worker pool is closed")
            self._ensure_worker_locked(index)
            failure = self._failures.get(shard)
            if failure is not None:
                # The ensure above may have just reaped a dead worker,
                # poisoning this shard after the caller's poison check.
                # Applying this batch would reorder writes past the
                # hole; park it for the barrier, like the in-worker
                # diversion path.
                failure.batches.append(batch)
                return
            self._outstanding += 1
            self._outstanding_by_shard[shard] = (
                self._outstanding_by_shard.get(shard, 0) + 1
            )
            job_id = self._next_job
            self._next_job += 1
            self._assigned[index][job_id] = (shard, batch)
            tasks = self._task_queues[index]
        tasks.put(("apply", job_id, shard, encoded))

    def _ensure_worker_locked(self, index: int) -> None:
        proc = self._procs[index]
        if proc is not None and not proc.is_alive():
            # A dead incarnation must be reaped *before* respawning:
            # spawning first would leave its unacknowledged jobs
            # orphaned in the assignment table (the reaper skips
            # indices with a live process), pinning the outstanding
            # count above zero and hanging every later barrier.
            self._fail_worker_jobs_locked(index, proc)
            proc = None
        if proc is None:
            # Fresh queue per incarnation: a crashed worker's queue may
            # still hold dispatched-but-unread jobs that crash handling
            # already failed and the pipeline already requeued; a new
            # process reading the old queue would apply them twice over.
            tasks = self._ctx.Queue()
            self._task_queues[index] = tasks
            proc = self._ctx.Process(
                target=_shard_process_main,
                args=(
                    index,
                    {
                        shard: path
                        for shard, path in self._shard_paths.items()
                        if shard % len(self._procs) == index
                    },
                    tasks,
                    self._results,
                    self._index_enabled,
                    self._metrics_enabled,
                ),
                name=f"{self._name}-{index}",
                daemon=True,
            )
            proc.start()
            self._procs[index] = proc
        if self._collector is None or not self._collector.is_alive():
            self._collector = threading.Thread(
                target=self._collect_loop,
                name=f"{self._name}-collector",
                daemon=True,
            )
            self._collector.start()

    # -- acknowledgement collection ---------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            try:
                message = self._results.get(timeout=0.05)
            except queue_module.Empty:
                with self._lock:
                    if self._closed and self._outstanding == 0:
                        return
                    self._reap_dead_locked()
                continue
            self._handle_ack(message)

    def _handle_ack(self, message: tuple) -> None:
        kind, index, job_id, shard = message[:4]
        with self._lock:
            entry = self._assigned[index].pop(job_id, None)
        if entry is None:
            # Superseded: crash handling already failed this job (the
            # ack raced the reaper).  Its accounting is settled; a
            # second settle here would corrupt the outstanding counts.
            # The ack's metric delta is dropped with it on purpose —
            # the requeued batch re-applies and counts *then*, so
            # merging here would double-count the same events.
            return
        _shard, batch = entry
        try:
            if kind == "ok":
                acked_seq = message[4]
                if acked_seq != batch[-1][0]:
                    # The worker acknowledged a different batch than the
                    # one this job carries — protocol corruption.  Park
                    # it; the requeue re-applies (idempotently) rather
                    # than trusting a torn acknowledgement.
                    self._park_failure_locked(
                        shard,
                        batch,
                        RuntimeError(
                            f"worker {index} acknowledged seq {acked_seq}"
                            f" for a batch ending at seq {batch[-1][0]}"
                        ),
                    )
                    return
                try:
                    self._on_applied(shard, batch)
                except BaseException as exc:  # noqa: BLE001 — parked below
                    # The worker applied the batch but the parent-side
                    # settle (checkpoint upkeep, accounting) failed.
                    # Same contract as a thread worker raising: park the
                    # batch as a failure so the barrier surfaces the
                    # error and the pipeline requeues — the eventual
                    # re-apply is harmless, rows are idempotent.  The
                    # delta is dropped: the re-apply recounts.
                    self._park_failure_locked(shard, batch, exc)
                else:
                    self._metrics.merge_delta(message[5])
            elif kind == "error":
                message_text, is_repro = message[4], message[5]
                error: BaseException = (
                    RemoteApplyError(message_text)
                    if is_repro
                    else RuntimeError(message_text)
                )
                # A failed apply's delta holds failure counters (no
                # applied events — the child rolled back), so merging
                # it cannot double-count the requeued batch.
                self._metrics.merge_delta(message[6] if len(message) > 6 else None)
                self._park_failure_locked(shard, batch, error)
            else:  # "diverted"
                self._park_failure_locked(
                    shard,
                    batch,
                    RuntimeError(f"shard {shard} diverted without a failure"),
                )
        finally:
            self._settle_locked(shard, 1)

    def _park_failure_locked(
        self, shard: int, batch: Any, error: BaseException
    ) -> None:
        """Append *batch* to *shard*'s failure, creating it if needed.

        Only the first error is kept (later batches are consequences,
        not causes) — for diversions the failure always exists already,
        FIFO guarantees the error acknowledgement preceded them.
        """
        with self._lock:
            failure = self._failures.get(shard)
            if failure is None:
                self._failures[shard] = ShardFailure(
                    shard=shard, error=error, batches=[batch]
                )
            else:
                failure.batches.append(batch)

    def _settle_locked(self, shard: int, count: int) -> None:
        with self._done:
            self._outstanding -= count
            left = self._outstanding_by_shard.get(shard, count) - count
            if left:
                self._outstanding_by_shard[shard] = left
            else:
                self._outstanding_by_shard.pop(shard, None)
            self._done.notify_all()

    def _reap_dead_locked(self) -> None:
        """Turn dead workers' unacknowledged jobs into shard failures."""
        for index, proc in enumerate(self._procs):
            if proc is not None and not proc.is_alive():
                self._fail_worker_jobs_locked(index, proc)

    def _fail_worker_jobs_locked(self, index: int, proc: Any) -> None:
        """Fail every job assigned to the dead *proc* at *index*.

        Batches join their shard's failure in dispatch order (job ids
        are allocated monotonically under the lock), the slot clears so
        the next dispatch respawns with a fresh queue, and the
        outstanding counts settle so barriers wake.
        """
        jobs = sorted(self._assigned[index].items())
        self._assigned[index].clear()
        self._procs[index] = None
        if not jobs:
            return
        error = WorkerCrashedError(
            f"shard worker {index} (exit code {proc.exitcode}) died"
            f" with {len(jobs)} unacknowledged batches; they have"
            f" been requeued and the journal still covers them"
        )
        for _job_id, (shard, batch) in jobs:
            failure = self._failures.get(shard)
            if failure is None:
                self._failures[shard] = failure = ShardFailure(
                    shard=shard, error=error, batches=[]
                )
            failure.batches.append(batch)
        with self._done:
            self._outstanding -= len(jobs)
            for _job_id, (shard, _batch) in jobs:
                left = self._outstanding_by_shard.get(shard, 1) - 1
                if left:
                    self._outstanding_by_shard[shard] = left
                else:
                    self._outstanding_by_shard.pop(shard, None)
            self._done.notify_all()

    # -- synchronization --------------------------------------------------------

    def barrier(self, shard: int | None = None) -> None:
        """Block until every dispatched batch (or *shard*'s) is settled.

        Settled means acknowledged applied, parked in a failure, or
        reaped from a dead worker; inspect :meth:`drain_failures`
        afterwards.
        """
        with self._done:
            if shard is None:
                self._done.wait_for(lambda: self._outstanding == 0)
            else:
                self._done.wait_for(
                    lambda: self._outstanding_by_shard.get(shard, 0) == 0
                )

    def drain_failures(self, shard: int | None = None) -> list[ShardFailure]:
        """Remove and return failures, unpoisoning the shards both here
        and (via an in-band control message) in their worker processes."""
        with self._lock:
            if shard is None:
                failures = [self._failures[key] for key in sorted(self._failures)]
                self._failures.clear()
            else:
                found = self._failures.pop(shard, None)
                failures = [found] if found is not None else []
            for failure in failures:
                index = self.worker_of(failure.shard)
                proc = self._procs[index]
                if proc is not None and proc.is_alive():
                    self._task_queues[index].put(("unpoison", failure.shard))
        return failures

    def has_failures(self) -> bool:
        with self._lock:
            return bool(self._failures)

    def poisoned(self, shard: int) -> bool:
        """True while *shard* has an undrained failure parked."""
        with self._lock:
            return shard in self._failures

    def drop_shard_caches(self, shard: int) -> None:
        """Tell *shard*'s worker (if alive) to forget its row caches.

        The coherence half of parent-side retention surgery: the
        worker's store instance memoizes id -> rowid and url -> page
        mappings that now point at deleted rows.  FIFO queueing lands
        the message after every batch already dispatched; a dead or
        never-spawned worker needs nothing (a respawn opens a fresh
        store).
        """
        with self._lock:
            index = self.worker_of(shard)
            proc = self._procs[index]
            if proc is not None and proc.is_alive():
                self._task_queues[index].put(("drop_caches", shard))

    def close(self) -> None:
        """Stop the workers after their queues drain."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            procs = list(self._procs)
            queues = list(self._task_queues)
            collector = self._collector
        for proc, tasks in zip(procs, queues):
            if proc is not None and proc.is_alive():
                tasks.put(("stop",))
        for proc in procs:
            if proc is not None:
                proc.join(timeout=10)
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=5)
        if collector is not None and collector.is_alive():
            collector.join(timeout=10)
        for tasks in queues:
            if tasks is not None:
                tasks.cancel_join_thread()
                tasks.close()
        self._results.cancel_join_thread()
        self._results.close()


def scatter_gather(
    tasks: Sequence[Callable[[], Any]],
    *,
    executor: ThreadPoolExecutor | None = None,
    max_workers: int | None = None,
) -> list[Any]:
    """Run *tasks* concurrently; results in task order.

    Waits for every task even when one fails (a half-finished fan-out
    would leave workers racing the caller's next step), then re-raises
    the first exception in task order.  Pass a long-lived *executor* on
    hot paths to skip per-call thread spawning.
    """
    if not tasks:
        return []
    if len(tasks) == 1:  # no threads for the degenerate fan-out
        return [tasks[0]()]
    if executor is not None:
        futures = [executor.submit(task) for task in tasks]
    else:
        own = ThreadPoolExecutor(
            max_workers=max_workers or min(len(tasks), 16),
            thread_name_prefix="scatter",
        )
        try:
            futures = [own.submit(task) for task in tasks]
        finally:
            own.shutdown(wait=False)
    results: list[Any] = []
    first_error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 — re-raised below
            if first_error is None:
                first_error = exc
            results.append(None)
    if first_error is not None:
        raise first_error
    return results


def ranked_merge(
    lists: Sequence[Sequence[Any]],
    limit: int,
    *,
    key: Callable[[Any], Any],
) -> tuple[list[Any], list[int]]:
    """Heap-merge per-shard best-first lists into one global page.

    Each input list must already be sorted ascending by *key* (the
    shards' ``(-score, id)`` total order); the merge consumes lazily,
    stopping after *limit* items — a shard whose hits all rank below
    the page boundary contributes nothing and is never walked.

    Returns ``(merged, consumed)`` where ``consumed[i]`` counts how
    many items of ``lists[i]`` made it into the page.  The counts are
    what paged search needs to advance each shard's continuation
    watermark: a shard resumes below its *last consumed* hit, not below
    the last hit it happened to fetch.  Since PR 5 the rows carry whole
    hits (id, score, snippet, matched terms), not bare ids — the merge
    is agnostic, ordering purely by *key*.
    """
    heap: list[tuple[Any, int, int]] = []
    for index, rows in enumerate(lists):
        if rows:
            heap.append((key(rows[0]), index, 0))
    heapq.heapify(heap)
    consumed = [0] * len(lists)
    merged: list[Any] = []
    while heap and len(merged) < limit:
        _key, index, position = heapq.heappop(heap)
        merged.append(lists[index][position])
        consumed[index] = position + 1
        position += 1
        if position < len(lists[index]):
            heapq.heappush(
                heap, (key(lists[index][position]), index, position)
            )
    return merged, consumed
