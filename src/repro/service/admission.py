"""Admission control for the HTTP serving layer.

The ROADMAP's serving frontier demands that overload be refused *at
the door* — before a request journals anything, allocates a sequence,
or queues work into SQLite — because a write that entered the journal
is a promise the service must keep.  This module is that door.  Four
independent gates, each with its own machine-readable rejection:

* **per-tenant token bucket** (:class:`TokenBucket`) — sustained rate
  with a burst allowance; writes cost one token per *event* (a batch
  of 50 events spends 50 tokens), reads cost one per request.  Over
  the limit → :class:`~repro.errors.RateLimitedError` (429) with a
  ``Retry-After`` hint computed from the refill rate.
* **per-tenant quota** — a hard ceiling on events a tenant may submit
  through this server instance.  Exhausted →
  :class:`~repro.errors.TenantQuotaError` (429).
* **connection cap** — concurrent sockets.  At the cap the server
  answers 503 and closes without reading the request.
* **backpressure** — when the ingest pipeline's unapplied backlog
  exceeds ``max_pending_events``, writes shed with
  :class:`~repro.errors.OverloadedError` (503).  The backlog is read
  from the pipeline's existing bookkeeping; nothing is journaled
  first, so a shed request leaves no trace but a counter.

Rejections are all-or-nothing per request: a batch naming several
tenants is admitted only if *every* tenant can cover its share, and no
bucket or quota is debited unless the whole batch is admitted — a
rejected request never burns budget.  All gates run under one lock
(they are integer arithmetic; the lock is never held across I/O).

Tenant isolation note (Provenance Threat Modeling, PAPERS.md): buckets
and quotas are keyed by tenant id *at the API boundary*, which is what
makes one tenant's flood another tenant's non-event — shard worker
pools further in are shared infrastructure and cannot make that
distinction.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import (
    ConfigurationError,
    ConnectionLimitError,
    OverloadedError,
    RateLimitedError,
    TenantQuotaError,
)
from repro.service.metrics import NULL_REGISTRY

__all__ = ["AdmissionParams", "AdmissionController", "TokenBucket"]


@dataclass(frozen=True)
class AdmissionParams:
    """Knobs for the serving layer's admission gates.

    The defaults admit everything except pathological overload: rate
    and quota are off (``None``), connections are capped generously,
    and backpressure sheds once the ingest backlog reaches 16k events.
    """

    #: Sustained per-tenant budget, in events (writes) or requests
    #: (reads) per second.  ``None`` disables rate limiting; ``0.0``
    #: seals the bucket at its burst allowance (no refill) — useful
    #: for tests and emergency tenant throttling.
    rate_per_s: float | None = None
    #: Token-bucket capacity: how far a tenant may burst above the
    #: sustained rate.
    burst: int = 1024
    #: Hard ceiling on events a tenant may submit through this server
    #: instance; ``None`` = unlimited.
    tenant_quota_events: int | None = None
    #: Concurrent connections the server holds open.
    max_connections: int = 256
    #: Shed writes once the ingest pipeline's unapplied backlog
    #: reaches this many events; ``None`` disables the gate.
    max_pending_events: int | None = 16 * 1024

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s < 0:
            raise ConfigurationError("rate_per_s must be >= 0 or None")
        if self.burst < 1:
            raise ConfigurationError("burst must be >= 1")
        if (
            self.tenant_quota_events is not None
            and self.tenant_quota_events < 0
        ):
            raise ConfigurationError(
                "tenant_quota_events must be >= 0 or None"
            )
        if self.max_connections < 1:
            raise ConfigurationError("max_connections must be >= 1")
        if (
            self.max_pending_events is not None
            and self.max_pending_events < 1
        ):
            raise ConfigurationError(
                "max_pending_events must be >= 1 or None"
            )


class TokenBucket:
    """A classic token bucket over a monotonic clock.

    Starts full (a fresh tenant may burst immediately).  ``rate=0``
    never refills.  Not thread-safe on its own — the controller
    serializes access under its lock.
    """

    __slots__ = ("rate", "burst", "tokens", "stamp")

    def __init__(self, rate: float, burst: int, now: float) -> None:
        self.rate = rate
        self.burst = float(burst)
        self.tokens = float(burst)
        self.stamp = now

    def _refill(self, now: float) -> None:
        elapsed = now - self.stamp
        if elapsed > 0:
            self.tokens = min(self.burst, self.tokens + elapsed * self.rate)
        self.stamp = now

    def can_afford(self, cost: float, now: float) -> bool:
        """Refill to *now*; True when *cost* tokens are available."""
        self._refill(now)
        return self.tokens >= cost

    def take(self, cost: float) -> None:
        """Debit *cost* tokens (call only after :meth:`can_afford`)."""
        self.tokens -= cost

    def retry_after(self, cost: float) -> float:
        """Seconds until *cost* tokens will be available.

        ``inf`` when the bucket is sealed (``rate=0``) and can never
        cover *cost*.
        """
        missing = cost - self.tokens
        if missing <= 0:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return missing / self.rate


class AdmissionController:
    """All four gates behind two calls: one for reads, one for writes.

    The server holds exactly one controller; every decision it makes
    ticks the ``http.admitted`` / ``http.rejected{reason}`` counters
    so the shed rate is observable from the same registry as
    everything else.
    """

    def __init__(
        self,
        params: AdmissionParams | None = None,
        *,
        metrics=NULL_REGISTRY,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.params = params if params is not None else AdmissionParams()
        self._clock = clock
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._quota_spent: dict[str, int] = {}
        self._connections = 0
        self._metric_admitted = metrics.counter("http.admitted")
        self._metric_rejected = metrics.counter(
            "http.rejected", label_name="reason"
        )
        self._metric_connections = metrics.gauge("http.connections")

    # -- connections ------------------------------------------------------------

    def connection_opened(self) -> None:
        """Count a new socket; raise (503) at the cap."""
        with self._lock:
            if self._connections >= self.params.max_connections:
                self._metric_rejected.inc(label="connection_limit")
                raise ConnectionLimitError(self.params.max_connections)
            self._connections += 1
            self._metric_connections.set(self._connections)

    def connection_closed(self) -> None:
        with self._lock:
            self._connections = max(0, self._connections - 1)
            self._metric_connections.set(self._connections)

    @property
    def open_connections(self) -> int:
        with self._lock:
            return self._connections

    # -- requests ---------------------------------------------------------------

    def admit_read(self, user_id: str | None) -> None:
        """Admit a read request (cost 1 against *user_id*'s bucket).

        Untenanted reads (health probes, metrics scrapes, global
        queries) pass the rate gate: they are the operator's window
        into an overloaded service and must not be the first thing an
        overload closes.
        """
        if user_id is None:
            self._metric_admitted.inc()
            return
        self._admit_costs({user_id: 1}, charge_quota=False)

    def admit_write(
        self, costs: Mapping[str, int], pending_events: int
    ) -> None:
        """Admit a write of ``{tenant: event_count}`` or raise.

        *pending_events* is the ingest pipeline's current unapplied
        backlog; the backpressure gate runs first — it is the cheapest
        check and the one that protects the journal.  Rejections are
        atomic: no tenant's bucket or quota is touched unless every
        tenant in the batch clears every gate.
        """
        params = self.params
        total = sum(costs.values())
        if (
            params.max_pending_events is not None
            and pending_events + total > params.max_pending_events
        ):
            self._metric_rejected.inc(label="overloaded")
            raise OverloadedError(
                f"ingest backlog at {pending_events} events (+{total}"
                f" requested) exceeds the {params.max_pending_events}"
                f" ceiling; load is shed before the journal"
            )
        self._admit_costs(costs, charge_quota=True)

    # -- internals --------------------------------------------------------------

    def _admit_costs(
        self, costs: Mapping[str, int], *, charge_quota: bool
    ) -> None:
        params = self.params
        now = self._clock()
        with self._lock:
            if charge_quota and params.tenant_quota_events is not None:
                for user_id, cost in costs.items():
                    spent = self._quota_spent.get(user_id, 0)
                    if spent + cost > params.tenant_quota_events:
                        self._metric_rejected.inc(
                            label="tenant_quota_exceeded"
                        )
                        raise TenantQuotaError(
                            user_id, params.tenant_quota_events
                        )
            if params.rate_per_s is not None:
                buckets = []
                for user_id, cost in costs.items():
                    bucket = self._buckets.get(user_id)
                    if bucket is None:
                        bucket = self._buckets[user_id] = TokenBucket(
                            params.rate_per_s, params.burst, now
                        )
                    if not bucket.can_afford(cost, now):
                        self._metric_rejected.inc(label="rate_limited")
                        raise RateLimitedError(
                            user_id, bucket.retry_after(cost)
                        )
                    buckets.append((bucket, cost))
                for bucket, cost in buckets:
                    bucket.take(cost)
            if charge_quota and params.tenant_quota_events is not None:
                for user_id, cost in costs.items():
                    self._quota_spent[user_id] = (
                        self._quota_spent.get(user_id, 0) + cost
                    )
        self._metric_admitted.inc()

    def quota_spent(self, user_id: str) -> int:
        """Events *user_id* has been admitted for (quota accounting)."""
        with self._lock:
            return self._quota_spent.get(user_id, 0)
