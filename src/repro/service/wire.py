"""HTTP/1.1 framing and JSON wire forms for the serving layer.

This module is the *protocol* half of the server split: everything
about bytes on a socket — request parsing under hard limits, response
encoding, canonical JSON — with no knowledge of routes, admission, or
the facade.  :mod:`repro.service.server` composes it with
:mod:`repro.service.admission` and :class:`~repro.service.service.\
ProvenanceService`; tests drive it directly over in-memory streams.

Design constraints, in order:

* **Stdlib only.**  ``asyncio`` streams and hand-rolled HTTP/1.1 —
  the request grammar this server accepts (method, target, headers,
  optional ``Content-Length`` body) is small enough that a parser
  under explicit byte limits is *safer* than a general one.
* **Every limit is enforced while reading, not after.**  Header bytes
  are capped by the stream's buffer limit (an overlong line raises
  before it is buffered whole), body bytes are refused from the
  ``Content-Length`` declaration *before* the body is read, and a
  declared-but-undelivered body (slowloris) is bounded by the caller's
  read timeout.  A client cannot make the server buffer more than
  ``max_header_bytes + max_body_bytes`` per connection.
* **Canonical JSON out.**  Responses serialize with sorted keys and
  minimal separators, so equal payloads are equal *bytes* — the
  wire-vs-in-process equivalence tests compare exactly that.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any
from urllib.parse import parse_qsl, unquote, urlsplit

# Re-exported: response encoding, the journal manifest, and export
# digests all share the one package-root canonical serialization.
from repro.canon import canonical_json
from repro.errors import (
    HeadersTooLargeError,
    PayloadTooLargeError,
    ProtocolError,
)

__all__ = [
    "CLOSE_STATUSES",
    "REASON_PHRASES",
    "WireLimits",
    "WireRequest",
    "canonical_json",
    "encode_response",
    "error_payload",
    "read_request",
]

#: Reason phrases for every status this server emits.
REASON_PHRASES: dict[int, str] = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

#: Statuses after which the connection cannot be reused: either the
#: request framing is unknown (we may not have consumed the body) or
#: the server is shedding and must not hold the socket.
CLOSE_STATUSES = frozenset({400, 408, 413, 431, 503})

_MAX_HEADER_COUNT = 100


@dataclass
class WireLimits:
    """Hard ceilings the request parser enforces while reading."""

    #: Request line + headers, in bytes (also the stream buffer limit).
    max_header_bytes: int = 16 * 1024
    #: Request body, in bytes (refused from the declared length).
    max_body_bytes: int = 1024 * 1024


@dataclass
class WireRequest:
    """One parsed HTTP request."""

    method: str
    #: Path component only, percent-decoded (``/v1/search``).
    path: str
    #: Query parameters, last occurrence wins.
    query: dict[str, str]
    #: Header names lower-cased.
    headers: dict[str, str]
    body: bytes = b""
    #: The raw request target, for logging.
    target: str = ""
    _json: Any = field(default=None, repr=False)

    def json(self) -> Any:
        """The body decoded as JSON (``None`` for an empty body).

        Raises :class:`~repro.errors.ProtocolError` (code
        ``bad_request``) when the body is not valid UTF-8 JSON.
        """
        if self._json is None and self.body:
            try:
                self._json = json.loads(self.body)
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ProtocolError(
                    f"request body is not valid JSON: {exc}"
                ) from None
        return self._json

    def keep_alive(self) -> bool:
        """Whether the client asked to reuse the connection."""
        return self.headers.get("connection", "").lower() != "close"


async def read_request(
    reader: asyncio.StreamReader, limits: WireLimits
) -> WireRequest | None:
    """Parse one request off *reader*, or ``None`` on clean EOF.

    Raises :class:`~repro.errors.ProtocolError` subclasses on anything
    the server cannot (or refuses to) parse; the caller maps those to
    4xx responses via the taxonomy's status table.  The stream must
    have been created with ``limit=limits.max_header_bytes`` so an
    overlong line errors instead of buffering without bound.
    """
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise HeadersTooLargeError(
            f"request line exceeds {limits.max_header_bytes} bytes"
        ) from None
    if not line:
        return None  # clean EOF between requests
    try:
        method, target, version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(f"malformed request line: {line[:80]!r}") from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(f"unsupported protocol version {version!r}")

    headers: dict[str, str] = {}
    header_bytes = len(line)
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            raise HeadersTooLargeError(
                f"header line exceeds {limits.max_header_bytes} bytes"
            ) from None
        if not line or line in (b"\r\n", b"\n"):
            break
        header_bytes += len(line)
        if (
            header_bytes > limits.max_header_bytes
            or len(headers) >= _MAX_HEADER_COUNT
        ):
            raise HeadersTooLargeError(
                f"header block exceeds {limits.max_header_bytes} bytes"
            )
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(f"malformed header line: {line[:80]!r}")
        headers[name.strip().lower()] = value.strip()

    if "transfer-encoding" in headers:
        # Chunked bodies would defeat the declared-length admission
        # check; this server never needs them for JSON payloads.
        raise ProtocolError("transfer-encoding is not supported")
    body = b""
    declared = headers.get("content-length")
    if declared is not None:
        try:
            length = int(declared)
        except ValueError:
            raise ProtocolError(
                f"malformed content-length {declared!r}"
            ) from None
        if length < 0:
            raise ProtocolError(f"negative content-length {length}")
        if length > limits.max_body_bytes:
            # Refused from the declaration: the body is never read, so
            # an oversized upload costs the server no buffering at all
            # (the connection closes; see CLOSE_STATUSES).
            raise PayloadTooLargeError(length, limits.max_body_bytes)
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                raise ProtocolError(
                    "request body ended before its declared length"
                ) from None

    split = urlsplit(target)
    query = {
        key: value
        for key, value in parse_qsl(split.query, keep_blank_values=True)
    }
    return WireRequest(
        method=method.upper(),
        path=unquote(split.path),
        query=query,
        headers=headers,
        body=body,
        target=target,
    )




def encode_response(
    status: int,
    payload: Any,
    *,
    keep_alive: bool = True,
    extra_headers: tuple[tuple[str, str], ...] = (),
) -> bytes:
    """One full HTTP/1.1 response with a canonical-JSON body."""
    body = canonical_json(payload)
    reason = REASON_PHRASES.get(status, "Unknown")
    closing = (not keep_alive) or status in CLOSE_STATUSES
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json; charset=utf-8",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if closing else 'keep-alive'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
    return head + body


def error_payload(
    code: str, message: str, **details: Any
) -> dict[str, Any]:
    """The uniform error body: ``{"error": {"code", "message", ...}}``."""
    error: dict[str, Any] = {"code": code, "message": message}
    error.update(details)
    return {"error": error}
