"""repro — a reproduction of "The Case for Browser Provenance".

Margo & Seltzer (TaPP '09) argue that the metadata web browsers record
is provenance, and that storing it as one homogeneous graph enables
contextual history search, privacy-preserving web-search
personalization, time-contextual retrieval, and download lineage.

This package reproduces the whole system on simulated substrates:

* :mod:`repro.web` — a synthetic topical web with a search engine;
* :mod:`repro.browser` — a Firefox-3-faithful browser simulator whose
  Places/downloads/form stores are the measured baseline;
* :mod:`repro.user` — behaviour models, the paper's scenario personas,
  and a 79-day workload generator;
* :mod:`repro.core` — the contribution: provenance taxonomy, capture,
  versioning policies, the homogeneous SQLite store, and the four
  use-case query algorithms;
* :mod:`repro.analysis` — metrics, storage and latency accounting;
* :mod:`repro.sim` — one-call assembly of the full stack;
* :mod:`repro.service` — the multi-tenant serving layer: sharded
  store pool, journaled batched ingest, per-user query cache.

Quickstart::

    from repro import Simulation, default_profile, WorkloadParams

    sim = Simulation.build(seed=7)
    sim.run_workload(default_profile(), WorkloadParams(days=3))
    engine = sim.query_engine()
    for hit in engine.contextual_search("rosebud"):
        print(hit.score, hit.url)
"""

from repro.clock import SimulatedClock
from repro.core import (
    CaptureConfig,
    EdgeKind,
    NodeKind,
    ProvenanceCapture,
    ProvenanceGraph,
    ProvenanceQueryEngine,
    ProvenanceStore,
)
from repro.service import ProvenanceService
from repro.sim import Simulation
from repro.user import (
    UserProfile,
    WorkloadParams,
    default_profile,
    gardener_profile,
    paper_scale_params,
)
from repro.web import Url, WebParams

__version__ = "1.0.0"

__all__ = [
    "CaptureConfig",
    "EdgeKind",
    "NodeKind",
    "ProvenanceCapture",
    "ProvenanceGraph",
    "ProvenanceQueryEngine",
    "ProvenanceService",
    "ProvenanceStore",
    "SimulatedClock",
    "Simulation",
    "Url",
    "UserProfile",
    "WebParams",
    "WorkloadParams",
    "__version__",
    "default_profile",
    "gardener_profile",
    "paper_scale_params",
]
