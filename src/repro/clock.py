"""Simulated time.

The workload generator replays 79 days of browsing (the span of the
history the paper measured) in a few seconds of wall time, so every
component that records timestamps takes a :class:`SimulatedClock` rather
than reading the system clock.  Timestamps are microseconds since the
Unix epoch — the unit Firefox Places uses in ``moz_historyvisits`` —
so the Places-compatible store can persist them unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

MICROSECONDS_PER_SECOND = 1_000_000
MICROSECONDS_PER_MINUTE = 60 * MICROSECONDS_PER_SECOND
MICROSECONDS_PER_HOUR = 60 * MICROSECONDS_PER_MINUTE
MICROSECONDS_PER_DAY = 24 * MICROSECONDS_PER_HOUR

#: 2009-02-23 00:00:00 UTC — the date of TaPP '09, a fitting epoch for
#: simulated histories.  Chosen so that generated timestamps are clearly
#: synthetic yet realistic in magnitude.
DEFAULT_EPOCH_US = 1_235_347_200 * MICROSECONDS_PER_SECOND


@dataclass
class SimulatedClock:
    """A monotonically advancing simulated clock.

    The clock never moves backwards: :meth:`advance` rejects negative
    deltas and :meth:`now` is stable between advances.  Monotonicity is
    what lets the edge-timestamp versioning policy (section 3.1 of the
    paper) break cycles by traversal order.
    """

    start_us: int = DEFAULT_EPOCH_US
    _now_us: int = field(init=False, default=0)

    def __post_init__(self) -> None:
        if self.start_us < 0:
            raise ValueError("clock epoch must be non-negative")
        self._now_us = self.start_us

    @property
    def now_us(self) -> int:
        """Current simulated time in microseconds since the Unix epoch."""
        return self._now_us

    @property
    def elapsed_us(self) -> int:
        """Microseconds elapsed since the clock's start."""
        return self._now_us - self.start_us

    @property
    def elapsed_days(self) -> float:
        """Days elapsed since the clock's start."""
        return self.elapsed_us / MICROSECONDS_PER_DAY

    def advance(self, delta_us: int) -> int:
        """Move the clock forward by *delta_us* and return the new time."""
        if delta_us < 0:
            raise ValueError(f"clock cannot move backwards (delta={delta_us})")
        self._now_us += delta_us
        return self._now_us

    def advance_seconds(self, seconds: float) -> int:
        """Move the clock forward by *seconds* (fractional allowed)."""
        return self.advance(round(seconds * MICROSECONDS_PER_SECOND))

    def advance_minutes(self, minutes: float) -> int:
        """Move the clock forward by *minutes* (fractional allowed)."""
        return self.advance(round(minutes * MICROSECONDS_PER_MINUTE))

    def advance_to(self, when_us: int) -> int:
        """Jump the clock to an absolute time at or after the present."""
        if when_us < self._now_us:
            raise ValueError(
                f"clock cannot move backwards (now={self._now_us}, target={when_us})"
            )
        self._now_us = when_us
        return self._now_us

    def tick(self) -> int:
        """Advance by a single microsecond.

        Used by capture code that must give successive events distinct,
        ordered timestamps even when they occur "at the same time".
        """
        return self.advance(1)


def format_us(timestamp_us: int) -> str:
    """Render a microsecond timestamp as ``YYYY-MM-DD HH:MM:SS`` (UTC).

    Implemented without :mod:`datetime` to stay allocation-light in hot
    report loops; accuracy past the day level only matters for display.
    """
    import datetime

    moment = datetime.datetime.fromtimestamp(
        timestamp_us / MICROSECONDS_PER_SECOND, tz=datetime.timezone.utc
    )
    return moment.strftime("%Y-%m-%d %H:%M:%S")
