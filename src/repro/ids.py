"""Deterministic identifier generation.

Provenance stores need stable, unique identifiers for nodes and edges.
Real systems use UUIDs; a reproduction needs *deterministic* ids so the
same simulated workload produces byte-identical stores, which makes the
storage-overhead experiment (E1/E2 in DESIGN.md) repeatable.

Two id forms are provided:

* :class:`IdAllocator` — monotonically increasing integer ids rendered
  with a short type prefix, e.g. ``visit:000041``.  Used for objects
  whose identity is "the Nth thing of its kind" (page visits, events).
* :func:`content_id` — a stable hash of content fields, e.g. for pages
  identified by URL.  Used where identity must survive re-runs that
  allocate in a different order.
"""

from __future__ import annotations

import hashlib
import itertools
from collections.abc import Iterable


class IdAllocator:
    """Allocates sequential ids with a type prefix.

    >>> alloc = IdAllocator()
    >>> alloc.next("visit")
    'visit:000000'
    >>> alloc.next("visit")
    'visit:000001'
    >>> alloc.next("edge")
    'edge:000000'

    Each prefix has its own counter, so ids double as per-kind ordinals:
    the numeric suffix of a ``visit:`` id is the visit's position in the
    capture order, which several queries exploit for cheap ordering.
    """

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}

    def next(self, prefix: str) -> str:
        """Return the next id for *prefix*."""
        counter = self._counters.setdefault(prefix, itertools.count())
        return f"{prefix}:{next(counter):06d}"

    def peek(self, prefix: str) -> int:
        """Return how many ids have been allocated for *prefix*."""
        counter = self._counters.get(prefix)
        if counter is None:
            return 0
        # itertools.count has no public inspection API; copy via repr.
        value = int(repr(counter).split("(")[1].rstrip(")"))
        return value

    def reset(self) -> None:
        """Forget all counters (ids restart from zero)."""
        self._counters.clear()


def content_id(prefix: str, *parts: str) -> str:
    """Return a deterministic id derived from *parts*.

    The id embeds a 12-hex-digit BLAKE2 digest, short enough to keep
    store rows compact while making collisions vanishingly unlikely at
    the scales this library targets (tens of thousands of nodes).

    >>> content_id("page", "http://example.com/")
    'page:8e89a...'  # doctest: +SKIP
    """
    digest = hashlib.blake2b("\x1f".join(parts).encode("utf-8"), digest_size=6)
    return f"{prefix}:{digest.hexdigest()}"


def ordinal_of(identifier: str) -> int:
    """Return the numeric suffix of a sequential id.

    Raises :class:`ValueError` for content-hash ids, whose suffix is not
    numeric.

    >>> ordinal_of("visit:000041")
    41
    """
    prefix, _, suffix = identifier.rpartition(":")
    if not prefix:
        raise ValueError(f"malformed id: {identifier!r}")
    return int(suffix)


def prefix_of(identifier: str) -> str:
    """Return the type prefix of an id.

    >>> prefix_of("visit:000041")
    'visit'
    """
    prefix, _, _ = identifier.rpartition(":")
    if not prefix:
        raise ValueError(f"malformed id: {identifier!r}")
    return prefix


def all_prefixes(identifiers: Iterable[str]) -> set[str]:
    """Return the set of type prefixes present in *identifiers*."""
    return {prefix_of(identifier) for identifier in identifiers}
