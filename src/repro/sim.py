"""One-call wiring of the full simulation stack.

Tests, benches, and examples all need the same assembly: synthetic web
-> server -> search engine -> browser -> provenance capture.
:class:`Simulation` builds it in one deterministic call and exposes the
pieces, so experiment code reads as *what* it measures rather than
plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.history import HistorySearch
from repro.browser.session import Browser
from repro.clock import SimulatedClock
from repro.core.capture import CaptureConfig, ProvenanceCapture
from repro.core.proxy import ProxyCapture
from repro.core.query.engine import ProvenanceQueryEngine
from repro.core.versioning import VersioningPolicy
from repro.user.profile import UserProfile
from repro.user.workload import WorkloadParams, WorkloadStats, run_workload
from repro.web.graph import WebGraph, WebParams, build_web
from repro.web.search_engine import SearchEngine
from repro.web.serving import WebServer


@dataclass
class Simulation:
    """A fully wired browsing simulation."""

    web: WebGraph
    server: WebServer
    engine: SearchEngine
    clock: SimulatedClock
    browser: Browser
    capture: ProvenanceCapture
    proxy: ProxyCapture | None = None

    @classmethod
    def build(
        cls,
        *,
        seed: int = 0,
        web_params: WebParams | None = None,
        capture_config: CaptureConfig | None = None,
        policy: VersioningPolicy | None = None,
        with_proxy: bool = False,
        places_path: str = ":memory:",
        downloads_path: str = ":memory:",
        forms_path: str = ":memory:",
    ) -> "Simulation":
        """Assemble web, server, search engine, browser, and capture."""
        web = build_web(web_params, seed=seed)
        server = WebServer(web)
        engine = SearchEngine(web)
        engine.crawl()
        clock = SimulatedClock()
        browser = Browser(
            server,
            clock,
            places_path=places_path,
            downloads_path=downloads_path,
            forms_path=forms_path,
        )
        browser.configure_search(engine)
        capture = ProvenanceCapture(policy=policy, config=capture_config)
        capture.attach(browser)
        proxy = None
        if with_proxy:
            proxy = ProxyCapture(search_hosts=(engine.host,))
            server.add_observer(proxy)
        return cls(
            web=web,
            server=server,
            engine=engine,
            clock=clock,
            browser=browser,
            capture=capture,
            proxy=proxy,
        )

    # -- conveniences -----------------------------------------------------------

    def run_workload(
        self, profile: UserProfile, params: WorkloadParams | None = None
    ) -> WorkloadStats:
        """Drive the browser with a behaviour-model workload."""
        return run_workload(self.browser, self.web, profile, params)

    def query_engine(self, **kwargs) -> ProvenanceQueryEngine:
        """A query engine over the captured provenance."""
        return ProvenanceQueryEngine.from_capture(self.capture, **kwargs)

    def history_search(self) -> HistorySearch:
        """The textual Places baseline over this browser's history."""
        return HistorySearch(self.browser.places)

    def close(self) -> None:
        self.browser.close()
