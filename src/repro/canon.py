"""Canonical JSON — one byte-stable serialization for the whole package.

Anything that hashes, signs, or byte-compares JSON must serialize it
identically everywhere: the wire layer's equivalence tests, the
journal's integrity manifest, export digests, and audit-report hashes
all share this single definition.  Canonical form is sorted keys, no
whitespace, UTF-8 with non-ASCII preserved — two equal payloads always
produce identical bytes.

Living at the package root keeps the layering clean: ``core`` modules
(e.g. :mod:`repro.core.export`) and ``service`` modules (e.g.
:mod:`repro.service.wire`) both depend on it without either depending
on the other.
"""

from __future__ import annotations

import json
from typing import Any


def canonical_json(payload: Any) -> bytes:
    """*payload* as canonical JSON bytes (sorted keys, no whitespace).

    One serialization for responses, digests, and equivalence tests:
    two equal payloads always produce identical bytes.
    """
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), ensure_ascii=False
    ).encode("utf-8")
