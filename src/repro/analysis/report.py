"""Fixed-width table rendering for benchmark output.

Every bench prints a small table comparing the paper's claim with the
measured value; this module keeps that output consistent and legible
without pulling in a formatting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render a left-aligned fixed-width table.

    Cells are stringified with :func:`format_cell`; column widths fit
    the widest cell.  Returns the table as one string (benches print
    it).
    """
    rendered_rows = [[format_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.ljust(widths[index]) for index, cell in enumerate(cells)
        ).rstrip()

    parts: list[str] = []
    if title:
        parts.append(title)
        parts.append("=" * len(title))
    parts.append(line(list(headers)))
    parts.append(line(["-" * width for width in widths]))
    for row in rendered_rows:
        parts.append(line(row))
    return "\n".join(parts)


def format_cell(value: object) -> str:
    """Stringify a table cell: floats to 3 significant style, rest str."""
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def claim_row(
    experiment: str, claim: str, measured: object, holds: bool
) -> list[object]:
    """A standard paper-vs-measured row."""
    return [experiment, claim, format_cell(measured), "yes" if holds else "NO"]
