"""Latency measurement for the query experiments (E4/E5).

The paper's claim is distributional — "less than 200ms in the majority
of cases" — so the harness collects per-query samples and reports
percentiles plus the fraction under the 200 ms bar.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import Any

#: The paper's interactive budget.
PAPER_BUDGET_MS = 200.0


@dataclass
class LatencySamples:
    """A named collection of latency samples in milliseconds."""

    name: str
    samples_ms: list[float] = field(default_factory=list)

    def add(self, value_ms: float) -> None:
        self.samples_ms.append(value_ms)

    def time_call(self, fn: Callable[[], Any]) -> Any:
        """Run *fn*, record its wall time, return its result."""
        start = time.perf_counter()
        result = fn()
        self.add((time.perf_counter() - start) * 1000.0)
        return result

    # -- statistics --------------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self.samples_ms)

    @property
    def mean_ms(self) -> float:
        if not self.samples_ms:
            return 0.0
        return sum(self.samples_ms) / len(self.samples_ms)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (fraction in [0, 1])."""
        if not self.samples_ms:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be in [0, 1]")
        ordered = sorted(self.samples_ms)
        index = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    @property
    def median_ms(self) -> float:
        return self.percentile(0.5)

    @property
    def p95_ms(self) -> float:
        return self.percentile(0.95)

    @property
    def max_ms(self) -> float:
        return max(self.samples_ms) if self.samples_ms else 0.0

    def fraction_under(self, budget_ms: float = PAPER_BUDGET_MS) -> float:
        """Fraction of samples under *budget_ms* (the 'majority' test)."""
        if not self.samples_ms:
            return 0.0
        under = sum(1 for sample in self.samples_ms if sample < budget_ms)
        return under / len(self.samples_ms)

    def majority_under(self, budget_ms: float = PAPER_BUDGET_MS) -> bool:
        return self.fraction_under(budget_ms) > 0.5

    def summary(self) -> str:
        return (
            f"{self.name}: n={self.count} median={self.median_ms:.1f}ms "
            f"p95={self.p95_ms:.1f}ms max={self.max_ms:.1f}ms "
            f"under{PAPER_BUDGET_MS:.0f}ms={self.fraction_under() * 100:.0f}%"
        )
