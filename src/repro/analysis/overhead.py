"""Storage overhead accounting (claims E1/E2).

The paper: "The total storage overhead of this schema over Places is
39.5%, but on real data, this represents less than 5MB because Places
is quite conservative."

:func:`measure_overhead` takes the browser's heterogeneous stores and
the provenance store after the *same* workload and produces the
comparison the paper reports: relative overhead of the provenance
schema over the Places-side storage, and the absolute delta.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.downloads import DownloadStore
from repro.browser.forms import FormHistoryStore
from repro.browser.places import PlacesStore
from repro.core.store import ProvenanceStore

MB = 1024 * 1024


@dataclass(frozen=True)
class OverheadReport:
    """Places-vs-provenance storage comparison."""

    places_bytes: int
    downloads_bytes: int
    forms_bytes: int
    provenance_bytes: int

    @property
    def baseline_bytes(self) -> int:
        """Everything the 2009 browser stores (the paper's 'Places')."""
        return self.places_bytes + self.downloads_bytes + self.forms_bytes

    @property
    def overhead_bytes(self) -> int:
        """Absolute extra storage for provenance (the <5MB claim)."""
        return self.provenance_bytes

    @property
    def overhead_ratio(self) -> float:
        """Provenance bytes as a fraction of baseline bytes (E1)."""
        if self.baseline_bytes == 0:
            return 0.0
        return self.provenance_bytes / self.baseline_bytes

    @property
    def overhead_percent(self) -> float:
        return self.overhead_ratio * 100.0

    @property
    def overhead_mb(self) -> float:
        return self.overhead_bytes / MB

    def summary(self) -> str:
        return (
            f"places={self.places_bytes / MB:.2f}MB "
            f"downloads={self.downloads_bytes / MB:.2f}MB "
            f"forms={self.forms_bytes / MB:.2f}MB "
            f"provenance={self.provenance_bytes / MB:.2f}MB "
            f"overhead={self.overhead_percent:.1f}% "
            f"({self.overhead_mb:.2f}MB absolute)"
        )


def measure_overhead(
    places: PlacesStore,
    downloads: DownloadStore,
    forms: FormHistoryStore,
    provenance: ProvenanceStore,
) -> OverheadReport:
    """Snapshot all four stores' sizes (commits first for accuracy)."""
    places.commit()
    downloads.commit()
    forms.commit()
    provenance.commit()
    return OverheadReport(
        places_bytes=places.size_bytes(),
        downloads_bytes=downloads.size_bytes(),
        forms_bytes=forms.size_bytes(),
        provenance_bytes=provenance.size_bytes(),
    )
