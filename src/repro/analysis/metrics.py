"""Retrieval metrics for the quality experiments.

Standard top-k metrics over ranked result lists.  Results are compared
by an extractable key (URL string by default) so hits from different
search systems — Places baseline, contextual search, temporal search —
score against the same ground truth.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from typing import Any

KeyFn = Callable[[Any], str]


def _default_key(item: Any) -> str:
    for attr in ("url", "target_url"):
        value = getattr(item, attr, None)
        if value is not None:
            return str(value)
    return str(item)


def reciprocal_rank(
    results: Sequence[Any], relevant: set[str], *, key: KeyFn = _default_key
) -> float:
    """1/rank of the first relevant result (0 when absent)."""
    for rank, item in enumerate(results, start=1):
        if key(item) in relevant:
            return 1.0 / rank
    return 0.0


def precision_at_k(
    results: Sequence[Any], relevant: set[str], k: int, *,
    key: KeyFn = _default_key,
) -> float:
    """Fraction of the top-k results that are relevant."""
    if k <= 0:
        raise ValueError("k must be positive")
    top = results[:k]
    if not top:
        return 0.0
    hits = sum(1 for item in top if key(item) in relevant)
    return hits / k


def recall_at_k(
    results: Sequence[Any], relevant: set[str], k: int, *,
    key: KeyFn = _default_key,
) -> float:
    """Fraction of relevant items appearing in the top-k."""
    if k <= 0:
        raise ValueError("k must be positive")
    if not relevant:
        return 0.0
    found = {key(item) for item in results[:k]} & relevant
    return len(found) / len(relevant)


def hit_at_k(
    results: Sequence[Any], relevant: set[str], k: int, *,
    key: KeyFn = _default_key,
) -> bool:
    """Whether any top-k result is relevant (success@k)."""
    return any(key(item) in relevant for item in results[:k])


def ndcg_at_k(
    results: Sequence[Any], gains: dict[str, float], k: int, *,
    key: KeyFn = _default_key,
) -> float:
    """Normalized discounted cumulative gain with graded relevance."""
    if k <= 0:
        raise ValueError("k must be positive")
    dcg = 0.0
    for rank, item in enumerate(results[:k], start=1):
        gain = gains.get(key(item), 0.0)
        if gain > 0.0:
            dcg += gain / math.log2(rank + 1)
    ideal = sorted(gains.values(), reverse=True)[:k]
    idcg = sum(
        gain / math.log2(rank + 1) for rank, gain in enumerate(ideal, start=1)
    )
    if idcg == 0.0:
        return 0.0
    return dcg / idcg


@dataclass
class MetricAccumulator:
    """Averages a metric over many query instances."""

    name: str
    total: float = 0.0
    count: int = 0

    def add(self, value: float) -> None:
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __str__(self) -> str:
        return f"{self.name}: {self.mean:.3f} over {self.count} queries"
