"""Measurement and reporting toolkit for the experiments."""

from repro.analysis.graphstats import (
    DegreeSummary,
    GraphCharacterization,
    characterize,
    session_lengths,
)
from repro.analysis.latency import PAPER_BUDGET_MS, LatencySamples
from repro.analysis.metrics import (
    MetricAccumulator,
    hit_at_k,
    ndcg_at_k,
    precision_at_k,
    recall_at_k,
    reciprocal_rank,
)
from repro.analysis.overhead import MB, OverheadReport, measure_overhead
from repro.analysis.report import claim_row, format_cell, format_table

__all__ = [
    "MB",
    "PAPER_BUDGET_MS",
    "DegreeSummary",
    "GraphCharacterization",
    "LatencySamples",
    "MetricAccumulator",
    "OverheadReport",
    "characterize",
    "claim_row",
    "format_cell",
    "format_table",
    "hit_at_k",
    "measure_overhead",
    "ndcg_at_k",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "session_lengths",
]
