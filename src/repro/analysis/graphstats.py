"""History-graph characterization.

The paper observes that browser history "differs from a typical web
graph in a number of important ways" — it records traversals, not
links-that-exist, and is shaped by one user's behaviour.  This module
computes the shape statistics that make those differences visible
(degree distributions, revisit skew, session structure, edge-kind
mix), used by the scaling bench to characterize the generated history
and available to downstream users profiling real captures.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.core.graph import ProvenanceGraph
from repro.core.taxonomy import NodeKind


@dataclass
class DegreeSummary:
    """Summary of a degree distribution."""

    mean: float
    p50: int
    p90: int
    max: int

    @classmethod
    def of(cls, degrees: list[int]) -> "DegreeSummary":
        if not degrees:
            return cls(mean=0.0, p50=0, p90=0, max=0)
        ordered = sorted(degrees)
        count = len(ordered)
        return cls(
            mean=sum(ordered) / count,
            p50=ordered[count // 2],
            p90=ordered[min(count - 1, (count * 9) // 10)],
            max=ordered[-1],
        )


@dataclass
class GraphCharacterization:
    """Everything the characterization table reports."""

    nodes: int
    edges: int
    node_kinds: dict[str, int]
    edge_kinds: dict[str, int]
    out_degree: DegreeSummary
    in_degree: DegreeSummary
    #: Distinct URLs and the skew of visits over them.
    distinct_urls: int
    max_visits_per_url: int
    #: Fraction of visits that are revisits (not the URL's first).
    revisit_fraction: float
    #: Fraction of user-action edges (vs automatic).
    user_action_edge_fraction: float
    rows: list[list[str]] = field(default_factory=list)

    def as_rows(self) -> list[list[object]]:
        """Rows for :func:`repro.analysis.report.format_table`."""
        return [
            ["nodes", self.nodes],
            ["edges", self.edges],
            ["distinct URLs", self.distinct_urls],
            ["revisit fraction", f"{self.revisit_fraction:.2f}"],
            ["max visits to one URL", self.max_visits_per_url],
            ["mean out-degree", f"{self.out_degree.mean:.2f}"],
            ["p90 out-degree", self.out_degree.p90],
            ["max out-degree", self.out_degree.max],
            ["mean in-degree", f"{self.in_degree.mean:.2f}"],
            ["user-action edge fraction",
             f"{self.user_action_edge_fraction:.2f}"],
        ]


def characterize(graph: ProvenanceGraph) -> GraphCharacterization:
    """Compute the characterization of one provenance graph."""
    out_degrees: list[int] = []
    in_degrees: list[int] = []
    url_visits: Counter[str] = Counter()
    for node in graph.nodes():
        in_deg, out_deg = graph.degree(node.id)
        out_degrees.append(out_deg)
        in_degrees.append(in_deg)
        if node.url and node.kind in (NodeKind.PAGE_VISIT, NodeKind.PAGE):
            url_visits[node.url] += 1

    total_visits = sum(url_visits.values())
    revisits = sum(count - 1 for count in url_visits.values() if count > 1)

    user_action_edges = 0
    total_edges = 0
    for edge in graph.edges():
        total_edges += 1
        if edge.is_user_action:
            user_action_edges += 1

    return GraphCharacterization(
        nodes=graph.node_count,
        edges=graph.edge_count,
        node_kinds=graph.kind_counts(),
        edge_kinds=graph.edge_kind_counts(),
        out_degree=DegreeSummary.of(out_degrees),
        in_degree=DegreeSummary.of(in_degrees),
        distinct_urls=len(url_visits),
        max_visits_per_url=max(url_visits.values(), default=0),
        revisit_fraction=(revisits / total_visits) if total_visits else 0.0,
        user_action_edge_fraction=(
            user_action_edges / total_edges if total_edges else 0.0
        ),
    )


def session_lengths(graph: ProvenanceGraph) -> list[int]:
    """Sizes of the session trees (see :mod:`repro.core.treeview`).

    A direct read on the paper's observation that histories decompose
    into tree-shaped sessions rooted at context-free navigations.
    """
    from repro.core.treeview import build_history_forest

    return sorted(
        (root.size() for root in build_history_forest(graph)), reverse=True
    )
