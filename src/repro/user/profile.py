"""User profiles: interests and habits.

A profile captures the two things that shape a browsing history's
graph: *what* the user cares about (a topic mixture — this drives which
links look attractive) and *how* the user browses (propensities for
searching, tabbed browsing, bookmarking, downloading — these drive
which edge kinds the history contains).

The habit knobs matter to the experiments directly: the sparsity
ablation (E12) contrasts a heavy location-bar user (high
``typed_rate``) against a link-follower, because the paper observes
that power users of the smart location bar "generate sparsely
connected metadata".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Habits:
    """Behavioural propensities, each in [0, 1].

    Rates are per-opportunity probabilities inside a browsing session;
    they need not sum to anything.  Defaults approximate the session
    statistics reported in the web-use literature of the period: most
    navigations follow links, revisits are common, tabs are used but
    not dominant.
    """

    search_rate: float = 0.25
    typed_rate: float = 0.15
    bookmark_use_rate: float = 0.10
    bookmark_add_rate: float = 0.04
    new_tab_rate: float = 0.15
    back_rate: float = 0.10
    download_rate: float = 0.05
    form_rate: float = 0.03
    revisit_rate: float = 0.30
    #: Mean number of link-follow steps after arriving somewhere.
    walk_length: int = 4

    def __post_init__(self) -> None:
        for name in (
            "search_rate", "typed_rate", "bookmark_use_rate",
            "bookmark_add_rate", "new_tab_rate", "back_rate",
            "download_rate", "form_rate", "revisit_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
        if self.walk_length < 1:
            raise ConfigurationError("walk_length must be >= 1")


@dataclass
class UserProfile:
    """One simulated user."""

    name: str
    #: Topic name -> relative interest weight (positive).
    interests: dict[str, float]
    habits: Habits = field(default_factory=Habits)

    def __post_init__(self) -> None:
        if not self.interests:
            raise ConfigurationError(f"user {self.name!r} has no interests")
        for topic, weight in self.interests.items():
            if weight <= 0:
                raise ConfigurationError(
                    f"interest weight for {topic!r} must be positive"
                )

    def sample_topic(self, rng: random.Random) -> str:
        """Draw a topic proportionally to interest weights."""
        topics = list(self.interests)
        weights = [self.interests[topic] for topic in topics]
        return rng.choices(topics, weights=weights)[0]

    def interest_in(self, topic: str | None) -> float:
        """Interest weight for *topic* (0 for none/unknown)."""
        if topic is None:
            return 0.0
        return self.interests.get(topic, 0.0)

    def top_topics(self, count: int = 3) -> list[str]:
        """The user's strongest interests, descending."""
        ranked = sorted(self.interests.items(), key=lambda kv: (-kv[1], kv[0]))
        return [topic for topic, _ in ranked[:count]]
