"""The user behaviour model.

Drives a :class:`~repro.browser.session.Browser` through realistic
browsing sessions: arrive somewhere (search, typed URL, or bookmark),
walk links with interest-biased choice, occasionally branch into a new
tab, go back, download, submit a form, or bookmark.  Everything is
seeded and deterministic.

The model's purpose is structural realism of the *history graph*, not
cognitive fidelity: it produces the features the paper's queries
exploit or suffer from — revisit-heavy hubs, topically coherent
sessions, co-open tabs, typed-navigation discontinuities, and
downloads buried behind redirect chains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.session import Browser
from repro.errors import NavigationError, NoSuchTabError, PageNotFoundError
from repro.user.profile import UserProfile
from repro.web.graph import WebGraph
from repro.web.page import Page, PageKind
from repro.web.url import Url


@dataclass
class SessionStats:
    """What one browsing session did (summed into workload stats)."""

    navigations: int = 0
    searches: int = 0
    typed: int = 0
    bookmark_clicks: int = 0
    bookmarks_added: int = 0
    downloads: int = 0
    forms: int = 0
    new_tabs: int = 0
    backs: int = 0

    def merge(self, other: "SessionStats") -> None:
        for name in vars(other):
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass
class BehaviorModel:
    """Interest-driven session generator over one browser."""

    browser: Browser
    web: WebGraph
    profile: UserProfile
    rng: random.Random = field(default_factory=lambda: random.Random(0))
    #: Revisit memory: URL -> times this model has landed on it.  Kept
    #: here rather than querying Places per decision so workload
    #: generation stays O(actions), not O(actions x history).
    _visit_memory: dict[Url, int] = field(default_factory=dict)

    # -- public entry points ---------------------------------------------------

    def browse_session(self, *, actions: int = 20) -> SessionStats:
        """Run one session of roughly *actions* user gestures.

        A session opens its own tab(s) and closes them at the end —
        the close events are what give the temporal layer its co-open
        intervals.
        """
        stats = SessionStats()
        habits = self.profile.habits
        tab = self.browser.open_tab()
        open_tabs = [tab]
        self._arrive(tab, stats)

        for _ in range(actions):
            active = self.rng.choice(open_tabs)
            page = self.browser.current_page(active)
            if page is None:
                self._arrive(active, stats)
                continue
            roll = self.rng.random()
            if roll < habits.download_rate and page.downloads:
                self._download(active, page, stats)
            elif roll < habits.download_rate + habits.form_rate:
                self._submit_form(active, page, stats)
            elif (
                roll < habits.download_rate + habits.form_rate + habits.new_tab_rate
                and page.links
                and len(open_tabs) < 6
            ):
                new_tab = self._branch(active, page, stats)
                if new_tab is not None:
                    open_tabs.append(new_tab)
            elif roll < 0.5 and page.links:
                self._follow_link(active, page, stats)
            elif self.rng.random() < habits.back_rate and self._can_back(active):
                self.browser.back(active)
                stats.backs += 1
            else:
                self._arrive(active, stats)
            if self.rng.random() < habits.bookmark_add_rate:
                self._maybe_bookmark(active, stats)
            # Dwell time between gestures: 5-90 seconds.
            self.browser.clock.advance_seconds(self.rng.uniform(5, 90))

        for open_tab in open_tabs:
            self.browser.close_tab(open_tab)
        return stats

    # -- arrival (session starts and topic switches) -------------------------------

    def _arrive(self, tab: int, stats: SessionStats) -> None:
        """Get the tab somewhere: search, bookmark, or typed URL."""
        habits = self.profile.habits
        roll = self.rng.random()
        if roll < habits.search_rate:
            self._search(tab, stats)
        elif roll < habits.search_rate + habits.bookmark_use_rate:
            if not self._use_bookmark(tab, stats):
                self._typed(tab, stats)
        else:
            self._typed(tab, stats)

    def _search(self, tab: int, stats: SessionStats) -> None:
        topic_name = self.profile.sample_topic(self.rng)
        try:
            topic = self.web.vocabulary[topic_name]
        except KeyError:
            return
        term_count = self.rng.randint(1, 2)
        query = " ".join(topic.sample(self.rng) for _ in range(term_count))
        try:
            result = self.browser.search_web(tab, query)
        except (NavigationError, PageNotFoundError):
            return
        stats.searches += 1
        stats.navigations += 1
        if result.page.links and self.rng.random() < 0.9:
            choice = self._pick_interesting(result.page.links)
            try:
                self.browser.click_link(tab, choice)
                stats.navigations += 1
                self._note_visit(tab)
            except (NavigationError, PageNotFoundError):
                pass

    def _typed(self, tab: int, stats: SessionStats) -> None:
        url = self._pick_destination()
        if url is None:
            return
        try:
            self.browser.navigate_typed(tab, url)
        except (NavigationError, PageNotFoundError):
            return
        stats.typed += 1
        stats.navigations += 1
        self._note_visit(tab)

    def _use_bookmark(self, tab: int, stats: SessionStats) -> bool:
        bookmarks = self.browser.places.bookmarks()
        if not bookmarks:
            return False
        bookmark_id, _place_id, _title = self.rng.choice(bookmarks)
        try:
            self.browser.click_bookmark(tab, bookmark_id)
        except (NavigationError, PageNotFoundError):
            return False
        stats.bookmark_clicks += 1
        stats.navigations += 1
        self._note_visit(tab)
        return True

    # -- in-page gestures -----------------------------------------------------------

    def _follow_link(self, tab: int, page: Page, stats: SessionStats) -> None:
        choice = self._pick_interesting(page.links)
        try:
            self.browser.click_link(tab, choice)
            stats.navigations += 1
            self._note_visit(tab)
        except (NavigationError, PageNotFoundError):
            pass

    def _branch(self, tab: int, page: Page, stats: SessionStats) -> int | None:
        choice = self._pick_interesting(page.links)
        try:
            new_tab = self.browser.open_in_new_tab(tab, choice)
        except (NavigationError, PageNotFoundError):
            return None
        stats.new_tabs += 1
        stats.navigations += 1
        self._note_visit(new_tab)
        return new_tab

    def _download(self, tab: int, page: Page, stats: SessionStats) -> None:
        target = self.rng.choice(page.downloads)
        try:
            self.browser.download_link(tab, target)
            stats.downloads += 1
        except (NavigationError, PageNotFoundError):
            pass

    def _submit_form(self, tab: int, page: Page, stats: SessionStats) -> None:
        """Submit a site-search form on the current page's site.

        Modeled as a query against the page's own site root with a
        topical term — "deep web" content reachable only by form
        (section 3.3).
        """
        if page.topic is None:
            return
        topic = self.web.vocabulary[page.topic]
        term = topic.sample(self.rng)
        action = Url.build(page.url.host, "/", scheme=page.url.scheme).with_query(
            q=term
        )
        if self.web.get(action) is None:
            # Site has no form endpoint in the static graph; fall back
            # to the site home so the submission still lands somewhere.
            action = Url.build(page.url.host, "/", scheme=page.url.scheme)
            if self.web.get(action) is None:
                return
        try:
            self.browser.submit_form(tab, action, {"q": term})
            stats.forms += 1
            stats.navigations += 1
        except (NavigationError, PageNotFoundError):
            pass

    def _maybe_bookmark(self, tab: int, stats: SessionStats) -> None:
        page = self.browser.current_page(tab)
        if page is None or page.kind is not PageKind.CONTENT:
            return
        try:
            self.browser.add_bookmark(tab)
            stats.bookmarks_added += 1
        except NavigationError:
            pass

    # -- choice helpers ---------------------------------------------------------------

    def _note_visit(self, tab: int) -> None:
        """Record the tab's current URL in revisit memory."""
        url = self.browser.current_url(tab)
        if url is not None:
            self._visit_memory[url] = self._visit_memory.get(url, 0) + 1

    def _pick_destination(self) -> Url | None:
        """Pick a typed-navigation target: revisit or fresh interest page."""
        if self._visit_memory and (
            self.rng.random() < self.profile.habits.revisit_rate
        ):
            urls = list(self._visit_memory)
            weights = list(self._visit_memory.values())
            return self.rng.choices(urls, weights=weights)[0]
        topic = self.profile.sample_topic(self.rng)
        candidates = self.web.content_pages(topic)
        if not candidates:
            candidates = self.web.content_pages()
        if not candidates:
            return None
        return self.rng.choice(candidates)

    def _pick_interesting(self, links: tuple[Url, ...]) -> Url:
        """Choose a link, weighting by interest in the target's topic."""
        weights = []
        for link in links:
            page = self.web.get(link)
            topic = page.topic if page is not None else None
            weights.append(0.2 + self.profile.interest_in(topic))
        return self.rng.choices(list(links), weights=weights)[0]

    def _can_back(self, tab: int) -> bool:
        try:
            return self.browser.can_go_back(tab)
        except NoSuchTabError:
            return False
