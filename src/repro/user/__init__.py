"""User simulation substrate.

Interest profiles, a seeded behaviour model, scripted scenario episodes
matching the paper's four use cases, a multi-day workload generator
calibrated to the paper's 25k-node/79-day history, and a recall model
for sampling realistic "find it again" queries.
"""

from repro.user.behavior import BehaviorModel, SessionStats
from repro.user.personas import (
    MalwareOutcome,
    RosebudOutcome,
    WineOutcome,
    default_profile,
    film_buff_profile,
    gardener_profile,
    heavy_awesomebar_profile,
    run_malware_episode,
    run_rosebud_episode,
    run_wine_tickets_episode,
    wine_enthusiast_profile,
)
from repro.user.profile import Habits, UserProfile
from repro.user.recall import RecallModel, RememberedQuery
from repro.user.workload import (
    WorkloadParams,
    WorkloadStats,
    paper_scale_params,
    run_workload,
)

__all__ = [
    "BehaviorModel",
    "Habits",
    "MalwareOutcome",
    "RecallModel",
    "RememberedQuery",
    "RosebudOutcome",
    "SessionStats",
    "UserProfile",
    "WineOutcome",
    "WorkloadParams",
    "WorkloadStats",
    "default_profile",
    "film_buff_profile",
    "gardener_profile",
    "heavy_awesomebar_profile",
    "paper_scale_params",
    "run_malware_episode",
    "run_rosebud_episode",
    "run_wine_tickets_episode",
    "run_workload",
    "wine_enthusiast_profile",
]
