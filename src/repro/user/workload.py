"""Day-by-day workload generation.

Replays a multi-day browsing history through a browser.  The scale
target comes straight from the paper: "one author's history has
accumulated more than 25,000 nodes over the past 79 days" (section 3).
:func:`paper_scale_params` returns parameters calibrated to land in
that regime; tests use much smaller configurations.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.browser.session import Browser
from repro.clock import MICROSECONDS_PER_DAY, MICROSECONDS_PER_HOUR
from repro.errors import ConfigurationError
from repro.user.behavior import BehaviorModel, SessionStats
from repro.user.profile import UserProfile
from repro.web.graph import WebGraph


@dataclass(frozen=True)
class WorkloadParams:
    """Shape of a generated history."""

    days: int = 79
    sessions_per_day: int = 3
    actions_per_session: int = 18
    #: Day-to-day jitter: each day's session count varies by ±this many.
    session_jitter: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.days < 1:
            raise ConfigurationError("days must be >= 1")
        if self.sessions_per_day < 1:
            raise ConfigurationError("sessions_per_day must be >= 1")
        if self.actions_per_session < 1:
            raise ConfigurationError("actions_per_session must be >= 1")
        if self.session_jitter < 0:
            raise ConfigurationError("session_jitter must be >= 0")


@dataclass
class WorkloadStats:
    """Aggregate results of a generated workload."""

    days: int = 0
    sessions: int = 0
    totals: SessionStats = field(default_factory=SessionStats)

    @property
    def navigations(self) -> int:
        return self.totals.navigations


def paper_scale_params(*, seed: int = 0) -> WorkloadParams:
    """Parameters calibrated to the paper's 25k-nodes / 79-days history.

    With the default web and profile, five ~35-action sessions per day
    yield roughly 350-360 provenance nodes per day (visits + embeds +
    search terms + downloads + bookmarks), comfortably clearing the
    paper's ">25,000 nodes over the past 79 days" (~316/day).
    """
    return WorkloadParams(
        days=79, sessions_per_day=5, actions_per_session=38, seed=seed
    )


def run_workload(
    browser: Browser,
    web: WebGraph,
    profile: UserProfile,
    params: WorkloadParams | None = None,
) -> WorkloadStats:
    """Run a full multi-day workload; return aggregate statistics.

    Sessions are spread through each simulated day (morning /
    afternoon / evening slots with jittered starts), and frecency is
    recomputed at end of day as Firefox's idle maintenance would.
    """
    params = params or WorkloadParams()
    rng = random.Random(params.seed)
    model = BehaviorModel(browser, web, profile, rng=random.Random(params.seed + 1))
    stats = WorkloadStats()

    day_start = browser.clock.now_us
    for _day in range(params.days):
        sessions_today = params.sessions_per_day
        if params.session_jitter:
            sessions_today += rng.randint(
                -params.session_jitter, params.session_jitter
            )
        sessions_today = max(1, sessions_today)

        for slot in range(sessions_today):
            # Space sessions across the waking day (08:00-23:00).
            slot_start = day_start + int(
                (8 + slot * (15 / sessions_today)) * MICROSECONDS_PER_HOUR
            )
            jitter = rng.randint(0, MICROSECONDS_PER_HOUR)
            target = slot_start + jitter
            if target > browser.clock.now_us:
                browser.clock.advance_to(target)
            session_stats = model.browse_session(
                actions=params.actions_per_session
            )
            stats.totals.merge(session_stats)
            stats.sessions += 1

        browser.end_of_day()
        stats.days += 1
        day_start += MICROSECONDS_PER_DAY
        if day_start > browser.clock.now_us:
            browser.clock.advance_to(day_start)

    return stats
