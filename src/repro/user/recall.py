"""A user recall model for generating realistic history queries.

Blanc-Brude & Scapin (cited in section 2.3) found that when people look
for an old document they rarely recall its name or location, but almost
always recall *associated events* and approximate time.  The quality
experiments need history queries with that character: partial terms,
fuzzy time, remembered associations.

:class:`RecallModel` samples such queries from a finished workload: it
picks a target the user actually visited, then "remembers" it the way
the study says people do — a couple of topical terms (not necessarily
from the title), a time window widened by how long ago it was, and
possibly the topic of a page that was open at the same time.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.browser.places import PlacesStore
from repro.browser.tabs import OpenInterval
from repro.clock import MICROSECONDS_PER_DAY
from repro.ir.tokenize import tokenize_filtered
from repro.web.graph import WebGraph
from repro.web.page import PageKind
from repro.web.url import Url


@dataclass(frozen=True)
class RememberedQuery:
    """One sampled 'find that page again' task."""

    #: The page the user is trying to find (ground truth).
    target_url: Url
    #: Terms the user recalls (drawn from the page's topic/body).
    terms: tuple[str, ...]
    #: Approximate time window the user would give ("around then").
    window_start_us: int
    window_end_us: int
    #: Terms describing a co-open page, when one was open ("I was also
    #: looking at ..."); empty if nothing co-open existed.
    associated_terms: tuple[str, ...]


class RecallModel:
    """Samples remembered queries from a completed browsing history."""

    def __init__(
        self,
        places: PlacesStore,
        web: WebGraph,
        intervals: list[OpenInterval],
        *,
        seed: int = 0,
    ) -> None:
        self.places = places
        self.web = web
        self.intervals = sorted(intervals, key=lambda iv: iv.opened_us)
        self._rng = random.Random(seed)

    def sample(self, *, now_us: int) -> RememberedQuery | None:
        """Sample one remembered query, or ``None`` if history is empty.

        Targets are content pages with at least one recorded display
        interval; pages the user never actually looked at cannot be
        remembered.
        """
        candidates = [
            interval for interval in self.intervals
            if self._is_memorable(interval.url)
        ]
        if not candidates:
            return None
        interval = self._rng.choice(candidates)
        page = self.web.get(interval.url)

        terms = self._recalled_terms(page)
        window = self._recalled_window(interval, now_us=now_us)
        associated = self._associated_terms(interval)
        return RememberedQuery(
            target_url=interval.url,
            terms=terms,
            window_start_us=window[0],
            window_end_us=window[1],
            associated_terms=associated,
        )

    def sample_many(self, count: int, *, now_us: int) -> list[RememberedQuery]:
        """Sample up to *count* distinct-target queries."""
        queries: list[RememberedQuery] = []
        seen: set[str] = set()
        attempts = 0
        while len(queries) < count and attempts < count * 20:
            attempts += 1
            query = self.sample(now_us=now_us)
            if query is None:
                break
            key = str(query.target_url)
            if key in seen:
                continue
            seen.add(key)
            queries.append(query)
        return queries

    # -- internals -----------------------------------------------------------

    def _is_memorable(self, url: Url) -> bool:
        page = self.web.get(url)
        return page is not None and page.kind is PageKind.CONTENT

    def _recalled_terms(self, page) -> tuple[str, ...]:
        """One or two terms the user associates with the page.

        Drawn from the page's body (weighted by frequency), not its
        title — people remember what a page was *about*, not what it
        was called.
        """
        body = [t for t in tokenize_filtered(" ".join(page.terms)) if len(t) > 2]
        if not body:
            body = tokenize_filtered(page.title) or ["page"]
        count = self._rng.randint(1, 2)
        picks: list[str] = []
        for _ in range(count):
            picks.append(self._rng.choice(body))
        return tuple(dict.fromkeys(picks))

    def _recalled_window(
        self, interval: OpenInterval, *, now_us: int
    ) -> tuple[int, int]:
        """A time window around the visit, wider the longer ago it was.

        Recency-dependent blur: same-week events are recalled to within
        a day; months-old events to within a week or two.
        """
        age_days = max(0.0, (now_us - interval.opened_us) / MICROSECONDS_PER_DAY)
        if age_days <= 7:
            blur_days = 1.0
        elif age_days <= 31:
            blur_days = 4.0
        else:
            blur_days = 10.0
        blur_us = int(blur_days * MICROSECONDS_PER_DAY)
        return (interval.opened_us - blur_us, interval.closed_us + blur_us)

    def _associated_terms(self, interval: OpenInterval) -> tuple[str, ...]:
        """Terms from a page that was open at the same time, if any."""
        co_open = [
            other for other in self.intervals
            if other is not interval
            and other.tab_id != interval.tab_id
            and other.overlaps(interval)
            and self._is_memorable(other.url)
        ]
        if not co_open:
            return ()
        other = self._rng.choice(co_open)
        page = self.web.get(other.url)
        body = [t for t in tokenize_filtered(" ".join(page.terms)) if len(t) > 2]
        if not body:
            return ()
        return (self._rng.choice(body),)
