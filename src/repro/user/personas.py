"""Personas and scripted scenario episodes.

The paper's four use cases are stories about specific users; this
module makes each story executable.  Profiles provide the background
browsing colour, and each ``run_*_episode`` function drives a browser
through the exact interaction sequence the paper narrates, returning
the ground truth the experiments score against (which page *should*
the query find, which download *is* the infection, ...).

The episodes use ``strict=False`` clicks only where the story calls
for deception (the malware lure) — everywhere else navigation follows
real links in the synthetic web.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.browser.session import Browser
from repro.errors import ConfigurationError
from repro.ir.tokenize import tokenize
from repro.user.profile import Habits, UserProfile
from repro.web.graph import WebGraph
from repro.web.page import PageKind
from repro.web.url import Url


# ---------------------------------------------------------------------------
# Profiles
# ---------------------------------------------------------------------------


def default_profile(name: str = "alice") -> UserProfile:
    """A balanced general-interest user (background workloads)."""
    return UserProfile(
        name=name,
        interests={
            "technology": 3.0,
            "film": 2.0,
            "cooking": 2.0,
            "sports": 1.5,
            "music": 1.5,
            "finance": 1.0,
            "health": 1.0,
        },
    )


def gardener_profile(name: str = "gardener") -> UserProfile:
    """The section 2.2 gardener: 'rosebud' means the flower."""
    return UserProfile(
        name=name,
        interests={"gardening": 6.0, "cooking": 2.0, "health": 1.0},
    )


def film_buff_profile(name: str = "cinephile") -> UserProfile:
    """The dual of the gardener: 'rosebud' means the sled."""
    return UserProfile(
        name=name,
        interests={"film": 6.0, "music": 2.0, "technology": 1.0},
    )


def wine_enthusiast_profile(name: str = "oenophile") -> UserProfile:
    """The section 2.3 user: wine pages browsed while booking flights."""
    return UserProfile(
        name=name,
        interests={"wine": 5.0, "travel": 3.0, "cooking": 2.0},
    )


def heavy_awesomebar_profile(name: str = "poweruser") -> UserProfile:
    """Section 3.2's ironic power user: mostly typed navigations.

    Used by the sparsity ablation — this user's Places graph is nearly
    edge-free although their behaviour is as coherent as anyone's.
    """
    return UserProfile(
        name=name,
        interests=default_profile().interests,
        habits=Habits(typed_rate=0.6, search_rate=0.1, revisit_rate=0.5),
    )


# ---------------------------------------------------------------------------
# Episode outcomes (ground truth for experiments)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RosebudOutcome:
    """Ground truth of the contextual-search story (use case 2.1)."""

    query: str
    results_url: Url
    clicked_url: Url
    clicked_title: str
    #: Whether the clicked page's URL+title contain the query term
    #: (when False, textual history search *cannot* find it — the
    #: paper's exact setup).
    textually_findable: bool


@dataclass(frozen=True)
class WineOutcome:
    """Ground truth of the time-contextual story (use case 2.3)."""

    wine_url: Url
    wine_title: str
    travel_query: str
    travel_urls: tuple[Url, ...]
    window_start_us: int
    window_end_us: int


@dataclass(frozen=True)
class MalwareOutcome:
    """Ground truth of the download-lineage story (use case 2.4)."""

    download_id: int
    download_url: Url
    #: The well-known page the chain started from (the answer to
    #: "first ancestor the user is likely to recognize").
    known_url: Url
    #: Top-level pages on the lure chain, in order, ending at the page
    #: hosting the download.
    chain: tuple[Url, ...]
    #: The page the user would mark untrusted (hosts the download).
    untrusted_url: Url


# ---------------------------------------------------------------------------
# Episodes
# ---------------------------------------------------------------------------


def run_rosebud_episode(
    browser: Browser,
    web: WebGraph,
    *,
    query: str = "rosebud",
    prefer_topic: str = "film",
    seed: int = 0,
) -> RosebudOutcome:
    """Search the web for *query* and click a result found by body text.

    Picks, when possible, a result whose URL and title do *not* contain
    the query tokens — the Citizen Kane situation: the page is about
    rosebud but does not say so anywhere textual history search looks.
    """
    rng = random.Random(seed)
    tab = browser.open_tab()
    serp = browser.search_web(tab, query)
    links = serp.page.links
    if not links:
        browser.close_tab(tab)
        raise ConfigurationError(f"web search for {query!r} returned nothing")

    tokens = set(tokenize(query))
    hidden_hits = []
    for link in links:
        page = web.get(link)
        if page is None:
            continue
        haystack = set(tokenize(f"{link} {page.title}"))
        if tokens & haystack:
            continue
        if prefer_topic and page.topic != prefer_topic:
            continue
        hidden_hits.append(link)
    if not hidden_hits:
        # Fall back to any result not textually matching, any topic.
        for link in links:
            page = web.get(link)
            if page is None:
                continue
            if not tokens & set(tokenize(f"{link} {page.title}")):
                hidden_hits.append(link)
    target = rng.choice(hidden_hits) if hidden_hits else links[0]

    result = browser.click_link(tab, target)
    browser.clock.advance_seconds(45)
    browser.close_tab(tab)
    textual = bool(
        tokens & set(tokenize(f"{result.final_url} {result.page.title}"))
    )
    return RosebudOutcome(
        query=query,
        results_url=serp.final_url,
        clicked_url=result.final_url,
        clicked_title=result.page.title,
        textually_findable=textual,
    )


def run_wine_tickets_episode(
    browser: Browser,
    web: WebGraph,
    *,
    travel_query: str = "plane tickets",
    seed: int = 0,
) -> WineOutcome:
    """Browse wine pages while shopping for flights in another tab.

    The wine page the user will later want is *not* searched for — she
    reaches it by browsing — so its only retrievable association is
    temporal, exactly as in section 2.3.
    """
    rng = random.Random(seed)
    wine_pages = web.content_pages("wine")
    if not wine_pages:
        raise ConfigurationError("the web has no wine pages")

    window_start = browser.clock.now_us
    wine_tab = browser.open_tab()
    # Arrive at a wine site home and browse a few hops.
    site_home = min(
        (url for url in wine_pages if url.path == "/"),
        key=str,
        default=wine_pages[0],
    )
    browser.navigate_typed(wine_tab, site_home)
    target_result = None
    for _hop in range(3):
        page = browser.current_page(wine_tab)
        candidates = [u for u in page.links if web.get(u) is not None]
        if not candidates:
            break
        choice = rng.choice(candidates)
        target_result = browser.click_link(wine_tab, choice)
        browser.clock.advance_seconds(rng.uniform(20, 60))
    if target_result is None:
        raise ConfigurationError("could not browse away from the wine home page")
    wine_url = target_result.final_url
    wine_title = target_result.page.title

    # Meanwhile, in another tab: the flight search.
    travel_tab = browser.open_tab()
    serp = browser.search_web(travel_tab, travel_query)
    travel_urls = [serp.final_url]
    for index in range(min(2, len(serp.page.links))):
        clicked = browser.click_result(travel_tab, index)
        travel_urls.append(clicked.final_url)
        browser.clock.advance_seconds(rng.uniform(20, 60))
        if index + 1 < min(2, len(serp.page.links)):
            browser.back(travel_tab)

    browser.clock.advance_seconds(30)
    browser.close_tab(wine_tab)
    browser.close_tab(travel_tab)
    return WineOutcome(
        wine_url=wine_url,
        wine_title=wine_title,
        travel_query=travel_query,
        travel_urls=tuple(travel_urls),
        window_start_us=window_start,
        window_end_us=browser.clock.now_us,
    )


def run_malware_episode(
    browser: Browser,
    web: WebGraph,
    *,
    familiar_visits: int = 5,
    lure_via: str = "click",
    seed: int = 0,
) -> MalwareOutcome:
    """Get tricked into downloading malware through a lure chain.

    The user starts from a page they know well (visited
    *familiar_visits* times beforehand), follows a deceptive link
    through a URL shortener onto a malicious site, clicks deeper, and
    downloads an executable whose URL names nothing.

    ``lure_via`` selects the deception vector: ``"click"`` (a link on
    the page — referrer chain intact in Places) or ``"typed"`` (a URL
    pasted from mail/chat — Firefox records *no relationship*, which
    is exactly where manual forensics dead-ends and provenance capture
    does not; section 3.2).
    """
    if lure_via not in ("click", "typed"):
        raise ConfigurationError(f"unknown lure_via: {lure_via!r}")
    rng = random.Random(seed)
    malicious_downloads = [
        url for url in web.malicious_urls()
        if web.page(url).kind is PageKind.DOWNLOAD
    ]
    if not malicious_downloads:
        raise ConfigurationError("the web has no malicious downloads")
    download_url = rng.choice(malicious_downloads)
    hosts = [
        url for url in web.malicious_urls()
        if download_url in web.page(url).downloads
    ]
    if not hosts:
        raise ConfigurationError(f"no page hosts {download_url}")
    host_page = hosts[0]

    # A shortener redirect into the malicious site, if one exists —
    # otherwise the lure link goes direct (both are real lures).
    lure_target = host_page
    site = web.site_for(host_page)
    for candidate in web.all_urls():
        page = web.page(candidate)
        if (
            page.kind is PageKind.REDIRECT
            and site is not None
            and page.redirect_to is not None
            and site.owns(page.redirect_to)
        ):
            lure_target = candidate
            break

    # Build familiarity with the starting page.
    content = web.content_pages()
    known_url = rng.choice([url for url in content if url.path == "/"] or content)
    tab = browser.open_tab()
    for _ in range(familiar_visits):
        browser.navigate_typed(tab, known_url)
        browser.clock.advance_seconds(rng.uniform(30, 120))

    # The lure: from the known page, a deceptive link (strict=False —
    # the link arrived by mail/ad, it is not part of the page) or a
    # pasted URL typed into the location bar.
    if lure_via == "typed":
        lure_result = browser.navigate_typed(tab, lure_target)
    else:
        lure_result = browser.click_link(tab, lure_target, strict=False)
    chain = [lure_result.final_url]
    browser.clock.advance_seconds(10)

    # Wander one or two hops inside the malicious site toward the host
    # page, then download.
    current = browser.current_page(tab)
    if current.url != host_page:
        if host_page in current.out_urls():
            browser.click_link(tab, host_page)
        else:
            browser.click_link(tab, host_page, strict=False)
        chain.append(host_page)
    download_id = browser.download_link(tab, download_url)
    browser.close_tab(tab)
    return MalwareOutcome(
        download_id=download_id,
        download_url=download_url,
        known_url=known_url,
        chain=tuple(chain),
        untrusted_url=host_page,
    )
