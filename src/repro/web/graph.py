"""Synthetic web graph generation.

Builds a static web of sites and pages with the structural features the
paper's use cases depend on:

* **topical sites** whose pages share a vocabulary, so search and
  interest-driven browsing are coherent (use cases 2.1/2.2);
* **cross-site links** biased toward topically similar sites, plus
  high-degree portal hubs, giving the familiar heavy-tailed web shape;
* **redirect pages** (URL shorteners, tracking hops), the non-user-action
  edges section 3.2 says lineage must keep and personalization unify;
* **embedded resources**, the top-level/inner-content relationship the
  Firefox transition table records;
* **downloadable artifacts**, including malicious ones reachable only
  through innocuous-looking pages — the forensics scenario of use case
  2.4 requires a download whose URL is uninformative but whose lineage
  passes through a recognizable page.

The builder is deterministic for a given :class:`WebParams` and seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, PageNotFoundError
from repro.web.content import ContentGenerator, ContentParams
from repro.web.page import Page, PageKind, PageStats
from repro.web.sites import Site, SiteRole, make_site_name
from repro.web.topics import TopicVocabulary, build_vocabulary, topic_similarity
from repro.web.url import Url

_DOWNLOAD_EXTENSIONS = ("zip", "pdf", "exe", "tar.gz", "jpg", "mp3")
_EMBED_EXTENSIONS = ("png", "gif", "css", "js")


@dataclass(frozen=True)
class WebParams:
    """Shape parameters for the synthetic web.

    Defaults produce a web of roughly 2,500 pages — big enough that
    browsing histories sample it sparsely (as real histories sample the
    real web) while keeping test runtimes low.  Benches scale these up.
    """

    sites_per_topic: int = 3
    pages_per_site: int = 60
    portal_sites: int = 2
    shortener_sites: int = 1
    filehost_sites: int = 1
    malicious_sites: int = 1
    links_per_page: int = 6
    cross_site_link_rate: float = 0.25
    redirect_rate: float = 0.06
    embed_rate: float = 0.5
    embeds_per_page: int = 2
    download_rate: float = 0.08
    extra_topics: int = 0
    content: ContentParams = field(default_factory=ContentParams)

    def __post_init__(self) -> None:
        if self.sites_per_topic < 1:
            raise ConfigurationError("sites_per_topic must be >= 1")
        if self.pages_per_site < 3:
            raise ConfigurationError("pages_per_site must be >= 3")
        if self.links_per_page < 1:
            raise ConfigurationError("links_per_page must be >= 1")
        for name in ("cross_site_link_rate", "redirect_rate", "embed_rate",
                     "download_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]")


class WebGraph:
    """The static synthetic web: an immutable URL -> Page mapping.

    Lookup helpers are provided for the components that consume the
    graph: the server fetches by URL, the crawler walks ``all_pages``,
    the user model samples by topic, and the benches pull download
    targets and malicious seeds.
    """

    def __init__(
        self,
        pages: dict[Url, Page],
        sites: list[Site],
        vocabulary: TopicVocabulary,
    ) -> None:
        self._pages = pages
        self.sites = sites
        self.vocabulary = vocabulary
        self._by_topic: dict[str, list[Url]] = {}
        for url, page in pages.items():
            if page.kind is PageKind.CONTENT and page.topic:
                self._by_topic.setdefault(page.topic, []).append(url)

    # -- lookup -------------------------------------------------------------

    def __contains__(self, url: Url) -> bool:
        return url in self._pages

    def __len__(self) -> int:
        return len(self._pages)

    def page(self, url: Url) -> Page:
        """Return the page at *url* or raise :class:`PageNotFoundError`."""
        try:
            return self._pages[url]
        except KeyError:
            raise PageNotFoundError(str(url)) from None

    def get(self, url: Url) -> Page | None:
        return self._pages.get(url)

    def all_pages(self) -> list[Page]:
        return list(self._pages.values())

    def all_urls(self) -> list[Url]:
        return list(self._pages.keys())

    # -- topical views ------------------------------------------------------

    def content_pages(self, topic: str | None = None) -> list[Url]:
        """Content-page URLs, optionally restricted to one topic."""
        if topic is None:
            return [
                url for url, page in self._pages.items()
                if page.kind is PageKind.CONTENT
            ]
        return list(self._by_topic.get(topic, ()))

    def download_urls(self) -> list[Url]:
        return [
            url for url, page in self._pages.items()
            if page.kind is PageKind.DOWNLOAD
        ]

    def malicious_urls(self) -> list[Url]:
        return [url for url, page in self._pages.items() if page.malicious]

    def site_for(self, url: Url) -> Site | None:
        for site in self.sites:
            if site.owns(url):
                return site
        return None

    def stats(self) -> PageStats:
        stats = PageStats()
        for page in self._pages.values():
            stats.observe(page)
        return stats


class WebGraphBuilder:
    """Deterministic builder for :class:`WebGraph`.

    Construction proceeds in phases: mint sites, lay out each site's
    internal page tree, add topically biased cross-site links, then
    thread redirects through shortener sites.  Phases are ordered so
    that every random draw happens in a fixed sequence for a seed.
    """

    def __init__(self, params: WebParams | None = None, *, seed: int = 0) -> None:
        self.params = params or WebParams()
        self.seed = seed
        self._rng = random.Random(seed)
        self.vocabulary = build_vocabulary(
            extra_topics=self.params.extra_topics, seed=seed
        )
        self._content = ContentGenerator(
            self.vocabulary, self.params.content, seed=seed + 1
        )
        self._pages: dict[Url, Page] = {}
        self._sites: list[Site] = []
        self._page_ordinal = 0

    # -- public entry point ---------------------------------------------------

    def build(self) -> WebGraph:
        """Build and return the web graph."""
        self._mint_sites()
        shorteners = [s for s in self._sites if s.role is SiteRole.SHORTENER]
        for site in self._sites:
            if site.role is SiteRole.SHORTENER:
                continue  # filled after targets exist
            self._build_site(site)
        self._add_cross_links()
        for site in shorteners:
            self._build_shortener(site)
        return WebGraph(self._pages, self._sites, self.vocabulary)

    # -- phase 1: sites -------------------------------------------------------

    def _mint_sites(self) -> None:
        params = self.params
        for topic in self.vocabulary.names:
            for ordinal in range(params.sites_per_topic):
                self._sites.append(
                    Site(
                        name=make_site_name(topic, ordinal, SiteRole.CONTENT),
                        role=SiteRole.CONTENT,
                        topic=topic,
                    )
                )
        for ordinal in range(params.portal_sites):
            topic = self._rng.choice(self.vocabulary.names)
            self._sites.append(
                Site(
                    name=make_site_name(topic, ordinal, SiteRole.PORTAL),
                    role=SiteRole.PORTAL,
                    topic=topic,
                )
            )
        for ordinal in range(params.filehost_sites):
            topic = "technology" if "technology" in self.vocabulary else (
                self.vocabulary.names[0]
            )
            self._sites.append(
                Site(
                    name=make_site_name(topic, ordinal, SiteRole.FILEHOST),
                    role=SiteRole.FILEHOST,
                    topic=topic,
                )
            )
        for ordinal in range(params.malicious_sites):
            topic = self._rng.choice(self.vocabulary.names)
            self._sites.append(
                Site(
                    name=make_site_name(topic, ordinal, SiteRole.MALICIOUS),
                    role=SiteRole.MALICIOUS,
                    topic=topic,
                )
            )
        for ordinal in range(params.shortener_sites):
            self._sites.append(
                Site(
                    name=make_site_name("", ordinal, SiteRole.SHORTENER),
                    role=SiteRole.SHORTENER,
                    topic=self.vocabulary.names[0],
                )
            )

    # -- phase 2: per-site page trees ------------------------------------------

    def _build_site(self, site: Site) -> None:
        params = self.params
        topic = self.vocabulary[site.topic]
        host = f"www.{site.domain}"
        home_url = Url.build(host, "/")

        section_count = max(2, params.pages_per_site // 12)
        article_budget = params.pages_per_site - 1 - section_count
        sections: list[Url] = []
        articles: list[Url] = []

        for index in range(section_count):
            slug = self._content.slug_for(topic, ordinal=index)
            sections.append(Url.build(host, f"/{slug}/"))
        per_section = max(1, article_budget // max(1, section_count))
        for section in sections:
            for _ in range(per_section):
                self._page_ordinal += 1
                slug = self._content.slug_for(topic, ordinal=self._page_ordinal)
                articles.append(section.child(f"{slug}.html"))

        # Articles: leaves with topical text, occasional embeds/downloads.
        article_pages: list[Page] = []
        for url in articles:
            embeds = self._maybe_embeds(site, url)
            downloads = self._maybe_downloads(site, url)
            self._page_ordinal += 1
            page = Page(
                url=url,
                kind=PageKind.CONTENT,
                title=self._content.title_for(topic, ordinal=self._page_ordinal),
                terms=self._article_terms(site, topic),
                topic=site.topic,
                embeds=embeds,
                downloads=downloads,
                malicious=site.role is SiteRole.MALICIOUS,
                size_bytes=self._rng.randint(2_000, 40_000),
            )
            self._register(page)
            article_pages.append(page)

        # Sections: link to their articles plus sibling sections.
        for index, url in enumerate(sections):
            children = tuple(
                a.url for a in article_pages if a.url.path.startswith(url.path)
            )
            siblings = tuple(s for s in sections if s != url)[:2]
            self._page_ordinal += 1
            self._register(
                Page(
                    url=url,
                    kind=PageKind.CONTENT,
                    title=self._content.title_for(topic, ordinal=self._page_ordinal),
                    terms=self._content.body_for(topic),
                    topic=site.topic,
                    links=children + siblings,
                    malicious=site.role is SiteRole.MALICIOUS,
                    size_bytes=self._rng.randint(2_000, 20_000),
                )
            )

        # Home: links to all sections and a sample of articles.
        featured = tuple(
            a.url for a in self._rng.sample(
                article_pages, k=min(4, len(article_pages))
            )
        )
        self._page_ordinal += 1
        self._register(
            Page(
                url=home_url,
                kind=PageKind.CONTENT,
                title=f"{site.name} {topic.head_terms(1)[0]} home",
                terms=self._content.body_for(topic),
                topic=site.topic,
                links=tuple(sections) + featured,
                malicious=site.role is SiteRole.MALICIOUS,
                size_bytes=self._rng.randint(4_000, 30_000),
            )
        )
        site.pages = [home_url, *sections, *(a.url for a in article_pages)]

    def _article_terms(self, site: Site, topic) -> tuple[str, ...]:
        if site.role is SiteRole.PORTAL:
            mixture = [
                (self.vocabulary[name], 1.0)
                for name in self._rng.sample(
                    self.vocabulary.names, k=min(3, len(self.vocabulary))
                )
            ]
            return self._content.mixed_body_for(mixture)
        return self._content.body_for(topic)

    def _maybe_embeds(self, site: Site, url: Url) -> tuple[Url, ...]:
        if self._rng.random() >= self.params.embed_rate:
            return ()
        embeds: list[Url] = []
        for index in range(self._rng.randint(1, self.params.embeds_per_page)):
            ext = self._rng.choice(_EMBED_EXTENSIONS)
            embed_url = Url.build(
                f"static.{site.domain}", f"/assets/{url.filename}-{index}.{ext}"
            )
            if embed_url not in self._pages:
                self._register(
                    Page(
                        url=embed_url,
                        kind=PageKind.EMBED,
                        title="",
                        terms=(),
                        size_bytes=self._rng.randint(500, 90_000),
                    )
                )
            embeds.append(embed_url)
        return tuple(embeds)

    def _maybe_downloads(self, site: Site, url: Url) -> tuple[Url, ...]:
        rate = self.params.download_rate
        if site.role in (SiteRole.FILEHOST, SiteRole.MALICIOUS):
            rate = 0.6  # hosting downloads is these sites' purpose
        if self._rng.random() >= rate:
            return ()
        ext = self._rng.choice(_DOWNLOAD_EXTENSIONS)
        if site.role is SiteRole.MALICIOUS:
            ext = "exe"
        self._page_ordinal += 1
        # Deliberately uninformative filename: the paper notes download
        # URLs are often unrecognizable, which is what makes lineage
        # queries necessary.
        name = f"f{self._page_ordinal:05d}.{ext}"
        download_url = Url.build(f"cdn.{site.domain}", f"/dl/{name}")
        if download_url not in self._pages:
            self._register(
                Page(
                    url=download_url,
                    kind=PageKind.DOWNLOAD,
                    title=name,
                    terms=(),
                    malicious=site.role is SiteRole.MALICIOUS,
                    size_bytes=self._rng.randint(10_000, 5_000_000),
                )
            )
        return (download_url,)

    # -- phase 3: cross-site links ----------------------------------------------

    def _add_cross_links(self) -> None:
        content_sites = [
            s for s in self._sites
            if s.role in (SiteRole.CONTENT, SiteRole.PORTAL, SiteRole.MALICIOUS)
        ]
        similarity: dict[tuple[str, str], float] = {}
        for source in content_sites:
            for target in content_sites:
                if source is target:
                    continue
                key = (source.topic, target.topic)
                if key not in similarity:
                    similarity[key] = topic_similarity(
                        self.vocabulary[source.topic], self.vocabulary[target.topic]
                    )

        for site in content_sites:
            fanout = self.params.links_per_page
            if site.role is SiteRole.PORTAL:
                fanout *= 3  # portals are hubs
            candidates = [t for t in content_sites if t is not site]
            if not candidates:
                continue
            weights = [
                0.05 + similarity.get((site.topic, target.topic), 0.0)
                + (1.0 if target.topic == site.topic else 0.0)
                for target in candidates
            ]
            for page_url in site.pages:
                page = self._pages[page_url]
                if self._rng.random() >= self.params.cross_site_link_rate:
                    continue
                extra: list[Url] = []
                for _ in range(self._rng.randint(1, max(1, fanout // 2))):
                    target_site = self._rng.choices(candidates, weights=weights)[0]
                    if target_site.pages:
                        extra.append(self._rng.choice(target_site.pages))
                if extra:
                    self._pages[page_url] = _with_links(page, tuple(extra))

    # -- phase 4: shorteners ------------------------------------------------------

    def _build_shortener(self, site: Site) -> None:
        """Mint redirect pages pointing at existing content pages.

        A fraction of cross-site links are then rewritten to route
        through the shortener, creating multi-hop redirect chains.
        """
        targets = [
            url for url, page in self._pages.items()
            if page.kind is PageKind.CONTENT
        ]
        if not targets:
            return
        count = max(5, len(targets) * self.params.redirect_rate.__trunc__() or 5)
        count = max(5, int(len(targets) * self.params.redirect_rate))
        redirects: list[Url] = []
        for index in range(count):
            short_url = Url.build(site.domain, f"/{index:04x}")
            target = self._rng.choice(targets)
            self._register(
                Page(
                    url=short_url,
                    kind=PageKind.REDIRECT,
                    title="",
                    terms=(),
                    redirect_to=target,
                    size_bytes=0,
                )
            )
            redirects.append(short_url)
        site.pages = redirects

        # Rewrite a slice of existing links through the shortener.
        rewritable = [
            url for url, page in self._pages.items()
            if page.kind is PageKind.CONTENT and page.links
        ]
        for url in rewritable:
            if self._rng.random() >= self.params.redirect_rate:
                continue
            page = self._pages[url]
            links = list(page.links)
            slot = self._rng.randrange(len(links))
            links[slot] = self._rng.choice(redirects)
            self._pages[url] = _replace_links(page, tuple(links))

    # -- helpers --------------------------------------------------------------------

    def _register(self, page: Page) -> None:
        self._pages[page.url] = page


def _with_links(page: Page, extra: tuple[Url, ...]) -> Page:
    return _replace_links(page, page.links + extra)


def _replace_links(page: Page, links: tuple[Url, ...]) -> Page:
    return Page(
        url=page.url,
        kind=page.kind,
        title=page.title,
        terms=page.terms,
        topic=page.topic,
        links=links,
        embeds=page.embeds,
        downloads=page.downloads,
        redirect_to=page.redirect_to,
        malicious=page.malicious,
        size_bytes=page.size_bytes,
    )


def build_web(params: WebParams | None = None, *, seed: int = 0) -> WebGraph:
    """Convenience wrapper: build a web graph in one call."""
    return WebGraphBuilder(params, seed=seed).build()
