"""Simulated web search engine.

A 2009-plausible engine over the synthetic web: a crawler feeds an
inverted index, ranking blends BM25 lexical relevance with PageRank
authority, and a small query language supports the "advanced operators
... intended for power users" the paper cites (Google's cheat sheet):
``site:`` restriction, quoted phrases, ``-term`` exclusion, and plain
additional terms — the operators a provenance-aware browser would wield
automatically on the user's behalf (use case 2.2).

The engine also plays its part in the privacy argument: it keeps a
``query_log`` of every query string it has been sent.  The
personalization experiment asserts that the log contains only augmented
query text — never history contents — which is the paper's
"personalize without giving information about the user to the search
engine" claim made checkable.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from urllib.parse import quote_plus

from repro.ir.index import InvertedIndex
from repro.ir.pagerank import normalize_scores, pagerank
from repro.ir.scoring import Bm25Params, bm25_scores
from repro.ir.tokenize import tokenize_filtered, url_tokens
from repro.web.graph import WebGraph
from repro.web.page import Page, PageKind
from repro.web.url import Url

_SITE_RE = re.compile(r"site:(\S+)")
_PHRASE_RE = re.compile(r'"([^"]+)"')
_EXCLUDE_RE = re.compile(r"(?:^|\s)-(\w+)")


@dataclass(frozen=True)
class ParsedQuery:
    """A query string decomposed into operator parts."""

    terms: tuple[str, ...]
    phrases: tuple[tuple[str, ...], ...] = ()
    excluded: tuple[str, ...] = ()
    site: str | None = None

    @property
    def all_terms(self) -> tuple[str, ...]:
        """Every positive term, including those inside phrases."""
        flattened = list(self.terms)
        for phrase in self.phrases:
            flattened.extend(phrase)
        return tuple(flattened)


def parse_query(text: str) -> ParsedQuery:
    """Parse a query string with ``site:``, phrase, and ``-`` operators.

    >>> parse_query('rosebud -kane site:gardening-site0.com "prune roses"')
    ... # doctest: +SKIP
    """
    site_match = _SITE_RE.search(text)
    site = site_match.group(1).lower() if site_match else None
    remainder = _SITE_RE.sub(" ", text)

    phrases = tuple(
        tuple(tokenize_filtered(match)) for match in _PHRASE_RE.findall(remainder)
    )
    remainder = _PHRASE_RE.sub(" ", remainder)

    excluded = tuple(token.lower() for token in _EXCLUDE_RE.findall(remainder))
    remainder = _EXCLUDE_RE.sub(" ", remainder)

    terms = tuple(tokenize_filtered(remainder))
    return ParsedQuery(terms=terms, phrases=phrases, excluded=excluded, site=site)


@dataclass(frozen=True, slots=True)
class SearchHit:
    """One web search result."""

    url: Url
    title: str
    score: float
    snippet: str


class SearchEngine:
    """Crawler, index, and ranker for the synthetic web."""

    #: Weight of PageRank relative to BM25 in the final blend.  Chosen so
    #: lexical relevance dominates but authority breaks ties — the blend
    #: that makes "canonical and popular" pages win generic queries, the
    #: behaviour section 2.3 complains about.
    AUTHORITY_WEIGHT = 0.3

    def __init__(self, web: WebGraph, *, host: str = "www.findit.com") -> None:
        self.web = web
        self.host = host.lower()
        self.index = InvertedIndex()
        self.authority: dict[str, float] = {}
        self.query_log: list[str] = []
        self._titles: dict[str, str] = {}
        self._crawled = False

    # -- crawling -----------------------------------------------------------------

    def crawl(self) -> int:
        """Index every content page in the web graph; return page count.

        Embeds, downloads, and redirects are not indexed — crawlers do
        not index binary artifacts, and redirect URLs carry no text.
        This asymmetry is why web search cannot answer download-lineage
        questions and browser provenance can.
        """
        links: dict[str, list[str]] = {}
        count = 0
        for page in self.web.all_pages():
            if page.kind is not PageKind.CONTENT:
                continue
            doc_id = str(page.url)
            tokens = (
                tokenize_filtered(page.title)
                + list(page.terms)
                + url_tokens(str(page.url))
            )
            self.index.add(doc_id, tokens)
            self._titles[doc_id] = page.title
            links[doc_id] = [
                str(target) for target in page.links
                if self.web.get(target) is not None
            ]
            count += 1
        self.authority = normalize_scores(pagerank(links))
        self._crawled = True
        return count

    # -- searching -----------------------------------------------------------------

    def search(self, query: str, *, limit: int = 10) -> list[SearchHit]:
        """Run *query* and return ranked hits.

        Every call is appended to ``query_log`` before execution — the
        log is the engine's-eye view the privacy experiment audits.
        """
        if not self._crawled:
            raise RuntimeError("search engine has not crawled yet")
        self.query_log.append(query)
        parsed = parse_query(query)
        terms = list(parsed.all_terms)
        if not terms:
            return []

        scored = bm25_scores(self.index, terms, Bm25Params())
        hits: list[SearchHit] = []
        for candidate in scored:
            url = Url.parse(candidate.doc_id)
            if parsed.site is not None and url.site != parsed.site:
                continue
            if parsed.excluded and self._contains_any(candidate.doc_id, parsed.excluded):
                continue
            if parsed.phrases and not self._matches_phrases(
                candidate.doc_id, parsed.phrases
            ):
                continue
            blended = candidate.score * (
                1.0 + self.AUTHORITY_WEIGHT * self.authority.get(candidate.doc_id, 0.0)
            )
            hits.append(
                SearchHit(
                    url=url,
                    title=self._titles.get(candidate.doc_id, ""),
                    score=blended,
                    snippet=self._snippet(candidate.doc_id, terms),
                )
            )
            if len(hits) >= limit * 3:
                break  # enough candidates to re-sort and cut
        hits.sort(key=lambda hit: (-hit.score, str(hit.url)))
        return hits[:limit]

    # -- dynamic results pages ---------------------------------------------------------

    def results_url(self, query: str) -> Url:
        """The URL of the results page for *query* (what the browser visits)."""
        return Url.build(self.host, "/search", query=f"q={quote_plus(query)}")

    def handler(self, url: Url) -> Page | None:
        """Dynamic-page handler for the engine's host (see WebServer).

        Generates a results page whose links are the ranked hits, so
        navigating from a search to a result produces an ordinary
        link-click with the results page as referrer — exactly the
        provenance chain use case 2.1 mines.
        """
        if url.host != self.host:
            return None
        if url.path == "/":
            return Page(
                url=url,
                kind=PageKind.CONTENT,
                title="findit search",
                terms=("search", "web", "findit"),
            )
        if url.path != "/search":
            return None
        params = dict(url.query_params())
        query = params.get("q", "")
        hits = self.search(query, limit=10)
        return Page(
            url=url,
            kind=PageKind.SEARCH_RESULTS,
            title=f"{query} - findit search",
            terms=tuple(tokenize_filtered(query)),
            links=tuple(hit.url for hit in hits),
        )

    # -- internals -------------------------------------------------------------------

    def _contains_any(self, doc_id: str, terms: tuple[str, ...]) -> bool:
        return any(
            any(posting.doc_id == doc_id for posting in self.index.postings(term))
            for term in terms
        )

    def _matches_phrases(
        self, doc_id: str, phrases: tuple[tuple[str, ...], ...]
    ) -> bool:
        """Phrase matching degraded to all-terms-present.

        The index stores bags, not positions; conjunctive matching is
        the standard approximation and preserves the operator's
        restrictive effect, which is all the experiments use it for.
        """
        return all(
            all(
                any(posting.doc_id == doc_id for posting in self.index.postings(term))
                for term in phrase
            )
            for phrase in phrases
        )

    def _snippet(self, doc_id: str, terms: list[str]) -> str:
        matched = [
            term for term in dict.fromkeys(terms)
            if any(posting.doc_id == doc_id for posting in self.index.postings(term))
        ]
        return " ... ".join(matched[:4])
