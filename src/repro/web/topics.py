"""Topic model for the synthetic web.

Pages in the synthetic web draw their text from *topics*: named term
distributions with a Zipfian shape.  Topics serve three purposes:

* they give pages realistic, skewed vocabularies so that textual search
  (both the web search engine and baseline history search) behaves like
  search over real text — a few head terms dominate, most terms are rare;
* they let the user model express *interests* as topic mixtures, which
  is how browsing sessions become topically coherent (section 2.2's
  gardener "often visits pages containing flower, gardening, ...");
* they provide **ambiguous terms** shared between topics — the paper's
  running example is "rosebud", shared between a film topic and a
  gardening topic — which the personalization experiment needs.

The vocabulary is generated deterministically from a seed, so workloads
are reproducible run to run.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

#: Terms every topic can emit with small probability — the connective
#: tissue of web text.  Kept lowercase; the tokenizer folds case anyway.
COMMON_TERMS = (
    "home", "page", "about", "contact", "news", "guide", "official",
    "welcome", "index", "info", "site", "online", "free", "best", "top",
)


@dataclass(frozen=True)
class Topic:
    """A named Zipfian distribution over terms.

    ``terms`` is ordered by rank: ``terms[0]`` is the head term.  The
    probability of rank *r* is proportional to ``1 / (r + 1) ** skew``.
    """

    name: str
    terms: tuple[str, ...]
    skew: float = 1.1
    _cdf: tuple[float, ...] = field(init=False, repr=False, compare=False, default=())

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError(f"topic {self.name!r} has no terms")
        weights = [1.0 / (rank + 1) ** self.skew for rank in range(len(self.terms))]
        total = sum(weights)
        cumulative: list[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            cumulative.append(running)
        object.__setattr__(self, "_cdf", tuple(cumulative))

    def sample(self, rng: random.Random) -> str:
        """Draw one term according to the Zipfian distribution."""
        point = rng.random()
        lo, hi = 0, len(self._cdf) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < point:
                lo = mid + 1
            else:
                hi = mid
        return self.terms[lo]

    def sample_many(self, rng: random.Random, count: int) -> list[str]:
        """Draw *count* terms (with repetition, as in real text)."""
        return [self.sample(rng) for _ in range(count)]

    def head_terms(self, count: int = 5) -> tuple[str, ...]:
        """The most probable terms — what a human would call the topic's words."""
        return self.terms[:count]

    def probability(self, term: str) -> float:
        """The probability of drawing *term* from this topic (0 if absent)."""
        try:
            rank = self.terms.index(term)
        except ValueError:
            return 0.0
        prior = self._cdf[rank]
        previous = self._cdf[rank - 1] if rank else 0.0
        return prior - previous


@dataclass(frozen=True)
class TopicVocabulary:
    """A universe of topics with controlled overlap.

    ``ambiguous_terms`` maps a shared term to the names of the topics
    that contain it; the personalization experiments look these up to
    construct queries whose meaning depends on the user.
    """

    topics: tuple[Topic, ...]
    ambiguous_terms: dict[str, tuple[str, ...]]

    def __getitem__(self, name: str) -> Topic:
        for topic in self.topics:
            if topic.name == name:
                return topic
        raise KeyError(name)

    def __contains__(self, name: str) -> bool:
        return any(topic.name == name for topic in self.topics)

    def __iter__(self):
        return iter(self.topics)

    def __len__(self) -> int:
        return len(self.topics)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(topic.name for topic in self.topics)

    def topics_for_term(self, term: str) -> tuple[str, ...]:
        """All topic names whose vocabulary includes *term*."""
        return tuple(
            topic.name for topic in self.topics if topic.probability(term) > 0.0
        )


# ---------------------------------------------------------------------------
# Vocabulary generation
# ---------------------------------------------------------------------------

#: Curated seed topics.  The first few realize the paper's scenarios
#: verbatim — film (rosebud/citizen kane), gardening (rosebud the
#: flower), wine, and travel (plane tickets) — so examples and benches
#: can tell the paper's stories with the paper's words.  "rosebud" is
#: deliberately present in both film and gardening.
_SEED_TOPICS: dict[str, tuple[str, ...]] = {
    "film": (
        "film", "movie", "kane", "citizen", "rosebud", "director", "welles",
        "cinema", "review", "classic", "scene", "actor", "screenplay",
        "oscar", "noir", "studio", "premiere", "critic", "reel", "script",
    ),
    "gardening": (
        "garden", "flower", "rosebud", "rose", "soil", "bloom", "plant",
        "seed", "prune", "petal", "shrub", "compost", "perennial",
        "trellis", "mulch", "stem", "nursery", "pollinator", "hardy", "bed",
    ),
    "wine": (
        "wine", "bottle", "vineyard", "grape", "tasting", "vintage",
        "cellar", "red", "white", "cabernet", "merlot", "pinot", "cork",
        "sommelier", "barrel", "winery", "bouquet", "tannin", "blend",
        "reserve",
    ),
    "travel": (
        "travel", "flight", "plane", "tickets", "airline", "airport",
        "hotel", "booking", "destination", "itinerary", "fare", "luggage",
        "departure", "arrival", "passport", "tour", "resort", "cruise",
        "visa", "layover",
    ),
    "cooking": (
        "recipe", "cooking", "kitchen", "ingredient", "bake", "oven",
        "flavor", "dish", "sauce", "spice", "chef", "roast", "simmer",
        "dough", "grill", "season", "menu", "dinner", "herb", "pan",
    ),
    "technology": (
        "software", "computer", "code", "browser", "internet", "data",
        "download", "server", "network", "program", "developer", "linux",
        "database", "release", "version", "opensource", "patch", "driver",
        "install", "update",
    ),
    "sports": (
        "game", "team", "score", "season", "player", "league", "match",
        "coach", "playoff", "stadium", "tournament", "goal", "champion",
        "roster", "draft", "referee", "inning", "race", "medal", "record",
    ),
    "finance": (
        "market", "stock", "price", "invest", "fund", "bank", "rate",
        "bond", "dividend", "portfolio", "trade", "earnings", "asset",
        "credit", "loan", "budget", "tax", "broker", "hedge", "yield",
    ),
    "music": (
        "music", "album", "song", "band", "concert", "guitar", "lyrics",
        "singer", "melody", "record", "tour", "vinyl", "chord", "drummer",
        "festival", "acoustic", "tempo", "harmony", "playlist", "studio",
    ),
    "health": (
        "health", "doctor", "exercise", "diet", "sleep", "vitamin",
        "symptom", "clinic", "therapy", "fitness", "nutrition", "immune",
        "wellness", "stress", "muscle", "heart", "allergy", "remedy",
        "posture", "hydration",
    ),
}

#: Suffixes used to mint synthetic vocabulary for generated topics.
_SYNTH_STEMS = (
    "lumen", "verdant", "cobalt", "meridian", "quartz", "saffron", "umbra",
    "zephyr", "basalt", "ember", "fathom", "gossamer", "halcyon", "indigo",
    "juniper", "krypton", "lattice", "monsoon", "nimbus", "obsidian",
    "paragon", "quiver", "russet", "sonder", "talisman", "ultramarine",
    "vesper", "willow", "xylem", "yonder", "zenith", "aurora", "borealis",
    "cascade", "delta", "estuary", "fjord", "glacier", "harbor", "isthmus",
)


def build_vocabulary(
    *,
    extra_topics: int = 0,
    terms_per_topic: int = 20,
    seed: int = 0,
) -> TopicVocabulary:
    """Build the standard vocabulary, optionally with synthetic topics.

    The ten curated topics are always present.  *extra_topics* appends
    deterministic synthetic topics (``synth00``, ``synth01``, ...) whose
    terms are minted from stem+index pairs, for experiments that need
    larger universes without disturbing the scenario topics.
    """
    if terms_per_topic < 3:
        raise ValueError("terms_per_topic must be at least 3")
    rng = random.Random(seed)
    topics = [
        Topic(name=name, terms=terms[:terms_per_topic])
        for name, terms in _SEED_TOPICS.items()
    ]
    for index in range(extra_topics):
        name = f"synth{index:02d}"
        stems = rng.sample(_SYNTH_STEMS, k=min(len(_SYNTH_STEMS), terms_per_topic))
        terms = tuple(f"{stem}{index:02d}" for stem in stems)[:terms_per_topic]
        topics.append(Topic(name=name, terms=terms))

    ambiguous: dict[str, tuple[str, ...]] = {}
    seen: dict[str, list[str]] = {}
    for topic in topics:
        for term in topic.terms:
            seen.setdefault(term, []).append(topic.name)
    for term, names in seen.items():
        if len(names) > 1 and term not in COMMON_TERMS:
            ambiguous[term] = tuple(names)
    return TopicVocabulary(topics=tuple(topics), ambiguous_terms=ambiguous)


def topic_similarity(first: Topic, second: Topic) -> float:
    """Cosine similarity between two topics' term distributions.

    Used by the web-graph generator to decide cross-topic link density:
    sites link more readily to topically nearby sites.
    """
    terms = set(first.terms) | set(second.terms)
    dot = 0.0
    norm_first = 0.0
    norm_second = 0.0
    for term in terms:
        p = first.probability(term)
        q = second.probability(term)
        dot += p * q
        norm_first += p * p
        norm_second += q * q
    if norm_first == 0.0 or norm_second == 0.0:
        return 0.0
    return dot / math.sqrt(norm_first * norm_second)
