"""Page and resource models for the synthetic web.

A :class:`Page` is everything the browser can observe about a URL: its
title, visible text, outgoing links, embedded sub-resources, redirect
behaviour, and downloadable attachments.  These are exactly the
observables that generate provenance in the paper's taxonomy —
link-click edges, embed edges, redirect edges, and download nodes.
"""

from __future__ import annotations

import enum
from collections import Counter
from dataclasses import dataclass, field

from repro.web.url import Url


class PageKind(enum.Enum):
    """What role a URL plays in the synthetic web."""

    #: An ordinary content page: text, links, maybe embeds/downloads.
    CONTENT = "content"
    #: A pure redirect: fetching it yields a 3xx to ``redirect_to``.
    REDIRECT = "redirect"
    #: An embedded sub-resource (image, stylesheet, ad iframe).
    EMBED = "embed"
    #: A downloadable artifact (served with content-disposition).
    DOWNLOAD = "download"
    #: A search-engine results page (generated dynamically).
    SEARCH_RESULTS = "search_results"
    #: A form endpoint whose content depends on submitted values.
    FORM_RESULT = "form_result"


@dataclass(frozen=True, slots=True)
class Page:
    """An immutable snapshot of a URL's content.

    ``terms`` is the page's body text as a bag of tokens; keeping the
    bag rather than a rendered string makes indexing and tf statistics
    cheap while preserving everything textual search can use.
    """

    url: Url
    kind: PageKind
    title: str
    terms: tuple[str, ...]
    topic: str | None = None
    links: tuple[Url, ...] = ()
    embeds: tuple[Url, ...] = ()
    downloads: tuple[Url, ...] = ()
    redirect_to: Url | None = None
    malicious: bool = False
    size_bytes: int = 0

    def __post_init__(self) -> None:
        if self.kind is PageKind.REDIRECT and self.redirect_to is None:
            raise ValueError(f"redirect page {self.url} has no target")
        if self.kind is not PageKind.REDIRECT and self.redirect_to is not None:
            raise ValueError(f"non-redirect page {self.url} has a redirect target")

    @property
    def text(self) -> str:
        """The page text as a single string (titles first, as in HTML)."""
        return " ".join((self.title, *self.terms))

    def term_counts(self) -> Counter[str]:
        """Term frequencies over title and body, lowercased."""
        counts: Counter[str] = Counter()
        for token in self.title.lower().split():
            counts[token] += 1
        for token in self.terms:
            counts[token] += 1
        return counts

    def out_urls(self) -> tuple[Url, ...]:
        """Every URL this page can lead the browser to, of any kind."""
        return (*self.links, *self.embeds, *self.downloads)


@dataclass(frozen=True, slots=True)
class FetchResult:
    """What the network layer returns for one HTTP exchange.

    ``redirect_chain`` lists the intermediate redirect URLs traversed
    before arriving at ``page`` (empty for direct fetches).  Redirect
    hops matter to provenance: they create non-user-action edges that
    lineage queries keep and personalization queries unify away
    (section 3.2 of the paper).
    """

    requested: Url
    page: Page
    redirect_chain: tuple[Url, ...] = ()
    status: int = 200

    @property
    def final_url(self) -> Url:
        return self.page.url

    @property
    def was_redirected(self) -> bool:
        return bool(self.redirect_chain)


@dataclass
class PageStats:
    """Aggregate statistics over a collection of pages (used in reports)."""

    pages: int = 0
    links: int = 0
    embeds: int = 0
    downloads: int = 0
    redirects: int = 0
    malicious: int = 0
    by_kind: Counter[str] = field(default_factory=Counter)

    def observe(self, page: Page) -> None:
        self.pages += 1
        self.links += len(page.links)
        self.embeds += len(page.embeds)
        self.downloads += len(page.downloads)
        if page.kind is PageKind.REDIRECT:
            self.redirects += 1
        if page.malicious:
            self.malicious += 1
        self.by_kind[page.kind.value] += 1

    @property
    def mean_out_degree(self) -> float:
        return self.links / self.pages if self.pages else 0.0
