"""Synthetic web substrate.

Everything the browser simulator browses: a static topical web graph
(:mod:`repro.web.graph`), fetch semantics with redirects and dynamic
pages (:mod:`repro.web.serving`), and a simulated search engine
(:mod:`repro.web.search_engine`).
"""

from repro.web.content import ContentGenerator, ContentParams
from repro.web.graph import WebGraph, WebGraphBuilder, WebParams, build_web
from repro.web.page import FetchResult, Page, PageKind, PageStats
from repro.web.search_engine import ParsedQuery, SearchEngine, SearchHit, parse_query
from repro.web.serving import MAX_REDIRECTS, HttpFlow, WebServer
from repro.web.sites import Site, SiteRole, make_site_name
from repro.web.topics import Topic, TopicVocabulary, build_vocabulary, topic_similarity
from repro.web.url import Url

__all__ = [
    "MAX_REDIRECTS",
    "ContentGenerator",
    "ContentParams",
    "FetchResult",
    "HttpFlow",
    "Page",
    "PageKind",
    "PageStats",
    "ParsedQuery",
    "SearchEngine",
    "SearchHit",
    "Site",
    "SiteRole",
    "Topic",
    "TopicVocabulary",
    "Url",
    "WebGraph",
    "WebGraphBuilder",
    "WebParams",
    "WebServer",
    "build_vocabulary",
    "build_web",
    "make_site_name",
    "parse_query",
    "topic_similarity",
]
