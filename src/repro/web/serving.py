"""Fetch semantics for the synthetic web.

:class:`WebServer` is the network boundary the browser talks to.  It
resolves redirect chains, serves dynamic pages (search results, form
endpoints) through registered handlers, and reports each hop so the
capture layer can record redirect provenance.

This is also where the mitmproxy-substitution hook lives: a
:class:`FlowObserver` can be attached to see every HTTP exchange —
request URL, referrer, redirect chain, final URL — which is exactly the
vantage point an out-of-browser proxy capture has (see
``repro.core.proxy``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Protocol

from repro.errors import PageNotFoundError, RedirectLoopError
from repro.web.graph import WebGraph
from repro.web.page import FetchResult, Page, PageKind
from repro.web.url import Url

#: Maximum redirect hops before the server gives up — matches the limit
#: Firefox 3 used.
MAX_REDIRECTS = 20


@dataclass(frozen=True, slots=True)
class HttpFlow:
    """One observed HTTP exchange, as a proxy would see it."""

    request: Url
    final: Url
    referrer: Url | None
    redirect_chain: tuple[Url, ...]
    status: int
    content_type: str
    timestamp_us: int


class FlowObserver(Protocol):
    """Anything that wants to watch HTTP flows (the proxy capture)."""

    def observe(self, flow: HttpFlow) -> None: ...


#: A dynamic handler maps a request URL to a generated page, or ``None``
#: to fall through to the static graph.
DynamicHandler = Callable[[Url], Page | None]


class WebServer:
    """Resolves URLs against the static graph plus dynamic handlers."""

    def __init__(self, web: WebGraph) -> None:
        self.web = web
        self._handlers: dict[str, DynamicHandler] = {}
        self._observers: list[FlowObserver] = []
        self.fetch_count = 0

    # -- wiring ---------------------------------------------------------------

    def register_handler(self, host: str, handler: DynamicHandler) -> None:
        """Route requests for *host* through *handler* before the graph."""
        self._handlers[host.lower()] = handler

    def add_observer(self, observer: FlowObserver) -> None:
        """Attach a flow observer (e.g. the proxy-capture layer)."""
        self._observers.append(observer)

    # -- fetching ---------------------------------------------------------------

    def fetch(
        self,
        url: Url,
        *,
        referrer: Url | None = None,
        timestamp_us: int = 0,
    ) -> FetchResult:
        """Fetch *url*, following redirects; raise for unknown URLs.

        Raises :class:`PageNotFoundError` if the URL (or a redirect
        target) does not exist, and :class:`RedirectLoopError` if a
        chain exceeds :data:`MAX_REDIRECTS` hops.
        """
        self.fetch_count += 1
        chain: list[Url] = []
        current = url
        while True:
            page = self._resolve(current)
            if page.kind is not PageKind.REDIRECT:
                break
            chain.append(current)
            if len(chain) > MAX_REDIRECTS:
                raise RedirectLoopError(
                    f"redirect chain from {url} exceeded {MAX_REDIRECTS} hops"
                )
            assert page.redirect_to is not None  # guaranteed by Page validation
            current = page.redirect_to

        result = FetchResult(
            requested=url,
            page=page,
            redirect_chain=tuple(chain),
            status=200,
        )
        self._notify(result, referrer, timestamp_us)
        return result

    def exists(self, url: Url) -> bool:
        """Whether a fetch of *url* would succeed (without side effects)."""
        try:
            self._resolve(url)
        except PageNotFoundError:
            return False
        return True

    # -- internals ----------------------------------------------------------------

    def _resolve(self, url: Url) -> Page:
        handler = self._handlers.get(url.host)
        if handler is not None:
            page = handler(url)
            if page is not None:
                return page
        return self.web.page(url)

    def _notify(
        self, result: FetchResult, referrer: Url | None, timestamp_us: int
    ) -> None:
        if not self._observers:
            return
        flow = HttpFlow(
            request=result.requested,
            final=result.final_url,
            referrer=referrer,
            redirect_chain=result.redirect_chain,
            status=result.status,
            content_type=_content_type_for(result.page),
            timestamp_us=timestamp_us,
        )
        for observer in self._observers:
            observer.observe(flow)


def _content_type_for(page: Page) -> str:
    if page.kind is PageKind.DOWNLOAD:
        return "application/octet-stream"
    if page.kind is PageKind.EMBED:
        name = page.url.filename
        if name.endswith(".css"):
            return "text/css"
        if name.endswith(".js"):
            return "text/javascript"
        return "image/png"
    return "text/html"
