"""Site model: domains and the pages they host.

A :class:`Site` groups pages under one registrable domain with a single
dominant topic.  Sites matter to the reproduction in two ways: the
browser's frecency algorithm and the search engine's ``site:`` operator
both key on domains, and the user model picks "favorite sites" whose
pages it revisits (the hubs that make a real history graph heavy-tailed).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.web.url import Url


class SiteRole(enum.Enum):
    """Structural roles a site can play in the synthetic web."""

    #: An ordinary topical content site.
    CONTENT = "content"
    #: A cross-topic portal with high out-degree (link hub).
    PORTAL = "portal"
    #: A file-hosting site: most terminal URLs are downloads.
    FILEHOST = "filehost"
    #: A URL shortener: every page is a redirect.
    SHORTENER = "shortener"
    #: A site serving malicious downloads behind innocuous pages.
    MALICIOUS = "malicious"
    #: The (single) search engine site; its pages are dynamic.
    SEARCH_ENGINE = "search_engine"


#: TLD assignment by role — purely cosmetic, but it keeps generated URLs
#: legible in reports and examples.
_ROLE_TLDS = {
    SiteRole.CONTENT: "com",
    SiteRole.PORTAL: "com",
    SiteRole.FILEHOST: "net",
    SiteRole.SHORTENER: "ly",
    SiteRole.MALICIOUS: "biz",
    SiteRole.SEARCH_ENGINE: "com",
}


@dataclass
class Site:
    """A domain plus its pages (URLs are filled in by the graph builder)."""

    name: str
    role: SiteRole
    topic: str
    pages: list[Url] = field(default_factory=list)

    @property
    def domain(self) -> str:
        return f"{self.name}.{_ROLE_TLDS[self.role]}"

    @property
    def home(self) -> Url:
        return Url.build(f"www.{self.domain}", "/")

    def page_count(self) -> int:
        return len(self.pages)

    def owns(self, url: Url) -> bool:
        """Whether *url* is hosted by this site."""
        return url.site == self.domain


def make_site_name(topic: str, ordinal: int, role: SiteRole) -> str:
    """Deterministic site names like ``wine-cellar3`` or ``portal0``.

    Names embed the topic so examples and debug output read naturally;
    the ordinal disambiguates multiple sites on one topic.
    """
    if role is SiteRole.PORTAL:
        return f"portal{ordinal}"
    if role is SiteRole.SHORTENER:
        return f"sho{ordinal}"
    if role is SiteRole.FILEHOST:
        return f"files{ordinal}"
    if role is SiteRole.MALICIOUS:
        return f"free-{topic}-stuff{ordinal}"
    if role is SiteRole.SEARCH_ENGINE:
        return "findit"
    return f"{topic}-site{ordinal}"
