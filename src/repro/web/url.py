"""URL value type and normalization.

Browser history keys everything on URLs, and the provenance store
inherits that: two visits are visits *to the same page* exactly when
their normalized URLs are equal.  This module provides a small,
hashable :class:`Url` value type with the normalization rules that
matter for history identity (case-folding the scheme and host, dropping
default ports, resolving dot segments, stripping fragments).

Fragments are stripped because Firefox Places treats ``page#a`` and
``page#b`` as the same place; query strings are preserved because form
submissions ("deep web" content, section 3.3 of the paper) are
distinguished by them.
"""

from __future__ import annotations

import posixpath
import re
from dataclasses import dataclass
from urllib.parse import parse_qsl, urlencode, urlsplit

from repro.errors import InvalidUrlError

_DEFAULT_PORTS = {"http": 80, "https": 443, "ftp": 21}
_SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*$")
_HOST_RE = re.compile(r"^[a-z0-9]([a-z0-9.-]*[a-z0-9])?$")


@dataclass(frozen=True, slots=True)
class Url:
    """A parsed, normalized URL.

    Construct with :meth:`parse` (from a string) or :meth:`build` (from
    components); the constructor itself trusts its arguments and is
    meant for internal use.
    """

    scheme: str
    host: str
    port: int | None
    path: str
    query: str

    # -- construction ------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse and normalize a URL string.

        Raises :class:`InvalidUrlError` for relative URLs, empty hosts,
        unsupported schemes, or malformed ports.
        """
        if not text or text.isspace():
            raise InvalidUrlError(f"empty URL: {text!r}")
        parts = urlsplit(text.strip())
        if not parts.scheme:
            raise InvalidUrlError(f"relative URL (no scheme): {text!r}")
        scheme = parts.scheme.lower()
        if not _SCHEME_RE.match(scheme):
            raise InvalidUrlError(f"bad scheme in {text!r}")
        host = (parts.hostname or "").lower()
        if not host or not _HOST_RE.match(host):
            raise InvalidUrlError(f"bad host in {text!r}")
        try:
            port = parts.port
        except ValueError as exc:
            raise InvalidUrlError(f"bad port in {text!r}") from exc
        if port == _DEFAULT_PORTS.get(scheme):
            port = None
        path = _normalize_path(parts.path)
        query = _normalize_query(parts.query)
        return cls(scheme=scheme, host=host, port=port, path=path, query=query)

    @classmethod
    def build(
        cls,
        host: str,
        path: str = "/",
        *,
        scheme: str = "http",
        query: str = "",
        port: int | None = None,
    ) -> "Url":
        """Build a URL from components, applying the same normalization."""
        authority = host if port is None else f"{host}:{port}"
        text = f"{scheme}://{authority}{path}"
        if query:
            text = f"{text}?{query}"
        return cls.parse(text)

    # -- derived views ------------------------------------------------------

    def __str__(self) -> str:
        authority = self.host if self.port is None else f"{self.host}:{self.port}"
        text = f"{self.scheme}://{authority}{self.path}"
        if self.query:
            text = f"{text}?{self.query}"
        return text

    @property
    def origin(self) -> str:
        """Scheme + authority, the browser same-origin unit."""
        authority = self.host if self.port is None else f"{self.host}:{self.port}"
        return f"{self.scheme}://{authority}"

    @property
    def site(self) -> str:
        """The registrable-domain approximation used to group pages by site.

        Real browsers consult the public-suffix list; the synthetic web
        only generates two-label hosts under generic TLDs, for which the
        last two labels are the right grouping.
        """
        labels = self.host.split(".")
        if len(labels) <= 2:
            return self.host
        return ".".join(labels[-2:])

    @property
    def filename(self) -> str:
        """The last path segment, or '' for directory-like paths."""
        return posixpath.basename(self.path)

    @property
    def is_download_like(self) -> bool:
        """Whether the path looks like a downloadable artifact."""
        name = self.filename
        return "." in name and not name.endswith((".html", ".htm"))

    def query_params(self) -> list[tuple[str, str]]:
        """Decoded query parameters in normalized order."""
        return parse_qsl(self.query, keep_blank_values=True)

    def child(self, segment: str) -> "Url":
        """Return a URL one path segment below this one."""
        base = self.path if self.path.endswith("/") else self.path + "/"
        return Url.build(
            self.host,
            base + segment,
            scheme=self.scheme,
            port=self.port,
        )

    def with_query(self, **params: str) -> "Url":
        """Return this URL with the given query parameters."""
        return Url.build(
            self.host,
            self.path,
            scheme=self.scheme,
            port=self.port,
            query=urlencode(sorted(params.items())),
        )

    def same_site(self, other: "Url") -> bool:
        """Whether two URLs belong to the same site."""
        return self.site == other.site


def _normalize_path(path: str) -> str:
    """Resolve dot segments and guarantee a leading slash."""
    if not path:
        return "/"
    # posixpath.normpath collapses '//' and resolves '.'/'..', but eats
    # a meaningful trailing slash; restore it.
    normalized = posixpath.normpath(path)
    if normalized == ".":
        normalized = "/"
    if not normalized.startswith("/"):
        normalized = "/" + normalized
    if path.endswith("/") and not normalized.endswith("/"):
        normalized += "/"
    return normalized


def _normalize_query(query: str) -> str:
    """Sort query parameters so equivalent URLs compare equal."""
    if not query:
        return ""
    return urlencode(sorted(parse_qsl(query, keep_blank_values=True)))
