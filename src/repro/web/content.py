"""Synthetic page content generation.

Generates titles and body text for pages from topic mixtures.  Content
generation is split from graph generation so experiments can vary text
statistics (vocabulary size, body length, title shape) independently of
link structure.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.web.topics import COMMON_TERMS, Topic, TopicVocabulary


@dataclass(frozen=True)
class ContentParams:
    """Knobs for text generation.

    ``body_terms`` is the mean body length in tokens; actual lengths
    vary ±50% uniformly, giving the index realistic document-length
    variance for BM25-style normalization to act on.
    ``common_term_rate`` is the probability any given body token is
    drawn from the common (topic-free) pool instead of the topic.
    """

    body_terms: int = 60
    title_terms: int = 3
    common_term_rate: float = 0.15

    def __post_init__(self) -> None:
        if self.body_terms < 1:
            raise ValueError("body_terms must be positive")
        if self.title_terms < 1:
            raise ValueError("title_terms must be positive")
        if not 0.0 <= self.common_term_rate < 1.0:
            raise ValueError("common_term_rate must be in [0, 1)")


class ContentGenerator:
    """Draws titles and bodies for pages of a given topic.

    A single generator instance is deterministic for a given seed and
    call sequence; the web-graph builder owns one and threads it through
    page creation in a fixed order.
    """

    def __init__(
        self,
        vocabulary: TopicVocabulary,
        params: ContentParams | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.vocabulary = vocabulary
        self.params = params or ContentParams()
        self._rng = random.Random(seed)

    def title_for(self, topic: Topic, *, ordinal: int) -> str:
        """A short, topical title such as ``'vineyard tasting guide 17'``.

        The ordinal keeps titles unique within a topic, mirroring how
        real sites number articles; uniqueness matters because history
        search dedupes on title+URL.
        """
        head = topic.sample_many(self._rng, self.params.title_terms)
        return " ".join((*head, str(ordinal)))

    def body_for(self, topic: Topic) -> tuple[str, ...]:
        """A bag of body tokens mixing topical and common terms."""
        length = self._body_length()
        tokens: list[str] = []
        for _ in range(length):
            if self._rng.random() < self.params.common_term_rate:
                tokens.append(self._rng.choice(COMMON_TERMS))
            else:
                tokens.append(topic.sample(self._rng))
        return tuple(tokens)

    def mixed_body_for(self, topics: list[tuple[Topic, float]]) -> tuple[str, ...]:
        """A body drawn from a weighted mixture of topics.

        Used for portal/hub pages that span topics; weights need not be
        normalized.
        """
        if not topics:
            raise ValueError("mixture needs at least one topic")
        total = sum(weight for _, weight in topics)
        if total <= 0:
            raise ValueError("mixture weights must be positive")
        length = self._body_length()
        tokens: list[str] = []
        for _ in range(length):
            if self._rng.random() < self.params.common_term_rate:
                tokens.append(self._rng.choice(COMMON_TERMS))
                continue
            point = self._rng.random() * total
            running = 0.0
            chosen = topics[-1][0]
            for topic, weight in topics:
                running += weight
                if point <= running:
                    chosen = topic
                    break
            tokens.append(chosen.sample(self._rng))
        return tuple(tokens)

    def slug_for(self, topic: Topic, *, ordinal: int) -> str:
        """A URL path slug such as ``'vineyard-tasting-17'``."""
        parts = topic.sample_many(self._rng, 2)
        return "-".join((*parts, str(ordinal)))

    def _body_length(self) -> int:
        mean = self.params.body_terms
        low = max(1, mean // 2)
        high = mean + mean // 2
        return self._rng.randint(low, high)
