"""Kleinberg's HITS adapted to browser history graphs.

Section 4 describes contextual history search as "a graph neighborhood
expansion algorithm, similar to web search algorithms such as
Kleinberg's HITS".  We provide HITS itself as well: given a root set
(e.g. textual matches), expand to the base set (neighbors) and run the
hub/authority power iteration.  On a history graph, authorities are
pages many user actions converge on; hubs are the pages (or search
terms) whose out-edges led to them — the paper's observation that
browser graphs have crawler-invisible structure (actually-traversed
links) is what makes these scores personal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.graph import ProvenanceGraph
from repro.core.query.timebound import Deadline
from repro.core.taxonomy import PERSONALIZATION_EDGE_KINDS, EdgeKind


@dataclass(frozen=True)
class HitsParams:
    iterations: int = 20
    tolerance: float = 1e-8
    edge_kinds: frozenset[EdgeKind] = PERSONALIZATION_EDGE_KINDS
    #: Cap on the base set to bound work (root set plus neighbors).
    base_limit: int = 5000

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ValueError("iterations must be positive")
        if self.base_limit < 1:
            raise ValueError("base_limit must be positive")


@dataclass(frozen=True)
class HitsScores:
    """Hub and authority vectors over the base set."""

    hubs: dict[str, float]
    authorities: dict[str, float]
    iterations_run: int

    def top_authorities(self, count: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(
            self.authorities.items(), key=lambda item: (-item[1], item[0])
        )
        return ranked[:count]

    def top_hubs(self, count: int = 10) -> list[tuple[str, float]]:
        ranked = sorted(self.hubs.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:count]


def expand_root_set(
    graph: ProvenanceGraph,
    roots: list[str],
    params: HitsParams | None = None,
) -> set[str]:
    """Kleinberg's base set: roots plus their immediate neighbors."""
    params = params or HitsParams()
    base: set[str] = set()
    for root in roots:
        if root not in graph:
            continue
        base.add(root)
        for neighbor in graph.children(root, params.edge_kinds):
            base.add(neighbor)
        for neighbor in graph.parents(root, params.edge_kinds):
            base.add(neighbor)
        if len(base) >= params.base_limit:
            break
    return base


def hits(
    graph: ProvenanceGraph,
    roots: list[str],
    params: HitsParams | None = None,
    *,
    deadline: Deadline | None = None,
) -> HitsScores:
    """Run HITS over the base set expanded from *roots*.

    Deadline-aware: iteration stops early when the budget expires; the
    scores computed so far are returned (they are meaningful after
    every iteration — HITS converges monotonically in practice).
    """
    params = params or HitsParams()
    base = expand_root_set(graph, roots, params)
    if not base:
        return HitsScores(hubs={}, authorities={}, iterations_run=0)

    out_neighbors: dict[str, list[str]] = {}
    in_neighbors: dict[str, list[str]] = {}
    for node_id in base:
        out_neighbors[node_id] = [
            child for child in graph.children(node_id, params.edge_kinds)
            if child in base
        ]
        in_neighbors[node_id] = [
            parent for parent in graph.parents(node_id, params.edge_kinds)
            if parent in base
        ]

    hubs = {node_id: 1.0 for node_id in base}
    authorities = {node_id: 1.0 for node_id in base}
    iterations_run = 0
    for _ in range(params.iterations):
        if deadline is not None and deadline.exceeded:
            break
        new_authorities = {
            node_id: sum(hubs[parent] for parent in in_neighbors[node_id])
            for node_id in base
        }
        _normalize(new_authorities)
        new_hubs = {
            node_id: sum(new_authorities[child] for child in out_neighbors[node_id])
            for node_id in base
        }
        _normalize(new_hubs)
        delta = sum(
            abs(new_authorities[node_id] - authorities[node_id]) for node_id in base
        )
        hubs, authorities = new_hubs, new_authorities
        iterations_run += 1
        if delta < params.tolerance:
            break
    return HitsScores(hubs=hubs, authorities=authorities,
                      iterations_run=iterations_run)


def _normalize(vector: dict[str, float]) -> None:
    norm = math.sqrt(sum(value * value for value in vector.values()))
    if norm <= 0.0:
        return
    for key in vector:
        vector[key] /= norm
