"""The in-memory provenance graph.

A directed graph of :class:`~repro.core.model.ProvNode` /
:class:`~repro.core.model.ProvEdge` with the indexes every query needs:
adjacency both ways, nodes by kind, and nodes by URL (the "queries over
all the objects that describe a given page" problem section 3.1 raises
about instance-versioned stores).

Acyclicity
----------
Provenance is by definition acyclic (section 3.1).  Under the default
node-versioning policy the graph enforces a cheap sufficient condition:
every edge must run forward in time (``src.timestamp_us <=
dst.timestamp_us``), which with strictly increasing capture timestamps
guarantees a DAG without per-insert cycle checks.  The edge-timestamp
policy instead stores a *cyclic* page graph whose traversal order is
disambiguated by edge timestamps; for that use, construct with
``enforce_dag=False`` (see :mod:`repro.core.versioning`).
:meth:`ProvenanceGraph.is_acyclic` runs a full Kahn check either way —
property tests use it to verify the invariant the cheap rule promises.
"""

from __future__ import annotations

import itertools
from collections import deque
from collections.abc import Iterable, Mapping

from repro.core.model import AttrValue, ProvEdge, ProvNode
from repro.core.taxonomy import EdgeKind, NodeKind
from repro.errors import CycleError, DuplicateNodeError, UnknownNodeError


class ProvenanceGraph:
    """Mutable provenance graph with query indexes."""

    def __init__(self, *, enforce_dag: bool = True) -> None:
        self.enforce_dag = enforce_dag
        self._nodes: dict[str, ProvNode] = {}
        self._out: dict[str, list[ProvEdge]] = {}
        self._in: dict[str, list[ProvEdge]] = {}
        self._by_kind: dict[NodeKind, list[str]] = {}
        self._by_url: dict[str, list[str]] = {}
        self._edge_ids = itertools.count()
        self._edge_count = 0

    # -- construction -------------------------------------------------------------

    def add_node(self, node: ProvNode) -> ProvNode:
        """Insert *node*; re-inserting the identical node is a no-op.

        Raises :class:`DuplicateNodeError` if a different node already
        uses the id.
        """
        existing = self._nodes.get(node.id)
        if existing is not None:
            if existing == node:
                return existing
            raise DuplicateNodeError(node.id)
        self._nodes[node.id] = node
        self._out[node.id] = []
        self._in[node.id] = []
        self._by_kind.setdefault(node.kind, []).append(node.id)
        if node.url is not None:
            self._by_url.setdefault(node.url, []).append(node.id)
        return node

    def add_edge(
        self,
        kind: EdgeKind,
        src: str,
        dst: str,
        *,
        timestamp_us: int,
        attrs: Mapping[str, AttrValue] | None = None,
    ) -> ProvEdge:
        """Insert an edge from ancestor *src* to descendant *dst*."""
        if src not in self._nodes:
            raise UnknownNodeError(src)
        if dst not in self._nodes:
            raise UnknownNodeError(dst)
        if self.enforce_dag:
            if self._nodes[src].timestamp_us > self._nodes[dst].timestamp_us:
                raise CycleError(src, dst)
        edge = ProvEdge(
            id=next(self._edge_ids),
            kind=kind,
            src=src,
            dst=dst,
            timestamp_us=timestamp_us,
            attrs=attrs or {},
        )
        self._out[src].append(edge)
        self._in[dst].append(edge)
        self._edge_count += 1
        return edge

    # -- basic access ----------------------------------------------------------------

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        return self._edge_count

    def node(self, node_id: str) -> ProvNode:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def get(self, node_id: str) -> ProvNode | None:
        return self._nodes.get(node_id)

    def nodes(self) -> Iterable[ProvNode]:
        return self._nodes.values()

    def node_ids(self) -> Iterable[str]:
        return self._nodes.keys()

    def edges(self) -> Iterable[ProvEdge]:
        for edges in self._out.values():
            yield from edges

    def by_kind(self, kind: NodeKind) -> list[str]:
        """Node ids of *kind*, in insertion (capture) order."""
        return list(self._by_kind.get(kind, ()))

    def nodes_for_url(self, url: str) -> list[str]:
        """Every node recorded for *url* (all visit instances, etc.)."""
        return list(self._by_url.get(url, ()))

    # -- adjacency ----------------------------------------------------------------------

    def out_edges(
        self, node_id: str, kinds: frozenset[EdgeKind] | None = None
    ) -> list[ProvEdge]:
        edges = self._out.get(node_id)
        if edges is None:
            raise UnknownNodeError(node_id)
        if kinds is None:
            return list(edges)
        return [edge for edge in edges if edge.kind in kinds]

    def in_edges(
        self, node_id: str, kinds: frozenset[EdgeKind] | None = None
    ) -> list[ProvEdge]:
        edges = self._in.get(node_id)
        if edges is None:
            raise UnknownNodeError(node_id)
        if kinds is None:
            return list(edges)
        return [edge for edge in edges if edge.kind in kinds]

    def children(
        self, node_id: str, kinds: frozenset[EdgeKind] | None = None
    ) -> list[str]:
        return [edge.dst for edge in self.out_edges(node_id, kinds)]

    def parents(
        self, node_id: str, kinds: frozenset[EdgeKind] | None = None
    ) -> list[str]:
        return [edge.src for edge in self.in_edges(node_id, kinds)]

    def degree(self, node_id: str) -> tuple[int, int]:
        """(in-degree, out-degree)."""
        return len(self._in.get(node_id, ())), len(self._out.get(node_id, ()))

    # -- traversal ----------------------------------------------------------------------

    def ancestors(
        self,
        node_id: str,
        *,
        kinds: frozenset[EdgeKind] | None = None,
        max_depth: int | None = None,
        limit: int | None = None,
    ) -> dict[str, int]:
        """BFS over incoming edges; returns {ancestor_id: depth}.

        The start node is not included.  ``limit`` bounds the number of
        ancestors returned (breadth-first, so nearest first) — this is
        the primitive behind the paper's "Download Lineage is a
        breadth-first search over a node's ancestors".
        """
        return self._bfs(node_id, forward=False, kinds=kinds,
                         max_depth=max_depth, limit=limit)

    def descendants(
        self,
        node_id: str,
        *,
        kinds: frozenset[EdgeKind] | None = None,
        max_depth: int | None = None,
        limit: int | None = None,
    ) -> dict[str, int]:
        """BFS over outgoing edges; returns {descendant_id: depth}."""
        return self._bfs(node_id, forward=True, kinds=kinds,
                         max_depth=max_depth, limit=limit)

    def _bfs(
        self,
        start: str,
        *,
        forward: bool,
        kinds: frozenset[EdgeKind] | None,
        max_depth: int | None,
        limit: int | None,
    ) -> dict[str, int]:
        if start not in self._nodes:
            raise UnknownNodeError(start)
        adjacency = self._out if forward else self._in
        found: dict[str, int] = {}
        queue: deque[tuple[str, int]] = deque([(start, 0)])
        seen = {start}
        while queue:
            current, depth = queue.popleft()
            if max_depth is not None and depth >= max_depth:
                continue
            for edge in adjacency[current]:
                if kinds is not None and edge.kind not in kinds:
                    continue
                neighbor = edge.dst if forward else edge.src
                if neighbor in seen:
                    continue
                seen.add(neighbor)
                found[neighbor] = depth + 1
                if limit is not None and len(found) >= limit:
                    return found
                queue.append((neighbor, depth + 1))
        return found

    # -- whole-graph checks -----------------------------------------------------------------

    def is_acyclic(self) -> bool:
        """Full Kahn's-algorithm acyclicity check (O(V + E))."""
        in_degree = {node_id: len(edges) for node_id, edges in self._in.items()}
        queue = deque(
            node_id for node_id, degree in in_degree.items() if degree == 0
        )
        visited = 0
        while queue:
            current = queue.popleft()
            visited += 1
            for edge in self._out[current]:
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    queue.append(edge.dst)
        return visited == len(self._nodes)

    def topological_order(self) -> list[str]:
        """Kahn topological order; raises :class:`CycleError` on cycles.

        Ties broken by timestamp then id, so the order is deterministic.
        """
        in_degree = {node_id: len(edges) for node_id, edges in self._in.items()}
        ready = sorted(
            (node_id for node_id, degree in in_degree.items() if degree == 0),
            key=self._order_key,
        )
        queue = deque(ready)
        order: list[str] = []
        while queue:
            current = queue.popleft()
            order.append(current)
            newly_ready = []
            for edge in self._out[current]:
                in_degree[edge.dst] -= 1
                if in_degree[edge.dst] == 0:
                    newly_ready.append(edge.dst)
            for node_id in sorted(newly_ready, key=self._order_key):
                queue.append(node_id)
        if len(order) != len(self._nodes):
            remaining = set(self._nodes) - set(order)
            some = sorted(remaining)[0]
            raise CycleError(some, some + " (cycle member)")
        return order

    def _order_key(self, node_id: str) -> tuple[int, str]:
        node = self._nodes[node_id]
        return (node.timestamp_us, node_id)

    # -- statistics ----------------------------------------------------------------------------

    def kind_counts(self) -> dict[str, int]:
        """Node counts per kind (string keys, for reports)."""
        return {
            kind.value: len(ids) for kind, ids in sorted(
                self._by_kind.items(), key=lambda item: item[0].value
            )
        }

    def edge_kind_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for edge in self.edges():
            counts[edge.kind.value] = counts.get(edge.kind.value, 0) + 1
        return dict(sorted(counts.items()))
