"""The browser provenance taxonomy (paper, section 3).

The paper proposes treating *all* browser metadata as one provenance
graph over heterogeneous objects.  This module enumerates the node and
edge kinds of that graph, with the two classifications the paper's
algorithms rely on:

* **first-class vs. second-class** — whether 2009 browsers already
  recorded the relationship (links, redirects, embeds) or dropped it
  (typed-URL context, bookmark activations, co-open intervals, search
  terms as graph objects).  The sparsity ablation (E12) toggles
  second-class capture.
* **user action vs. automatic** — whether a user gesture created the
  edge.  Section 3.2: redirects and embeds "are not generated as the
  result of a user action" and personalization algorithms may wish to
  exclude them; lineage must keep them.
"""

from __future__ import annotations

import enum


class NodeKind(enum.Enum):
    """Kinds of objects in the homogeneous provenance store."""

    #: A page *object*, identified by URL (edge-versioning policy).
    PAGE = "page"
    #: One visit *instance* of a page (node-versioning policy — the
    #: default, mirroring how Firefox stores time stamps "as instances
    #: of link traversals").
    PAGE_VISIT = "page_visit"
    #: A user-entered web search query (section 3.3: "concise,
    #: conceptual, user-generated descriptors").
    SEARCH_TERM = "search_term"
    #: One form submission (fields and values) — deep-web provenance.
    FORM_SUBMISSION = "form_submission"
    #: A bookmark object.
    BOOKMARK = "bookmark"
    #: A downloaded file on disk.
    DOWNLOAD = "download"

    @property
    def is_versioned_instance(self) -> bool:
        """Whether nodes of this kind are per-event instances."""
        return self in (NodeKind.PAGE_VISIT, NodeKind.FORM_SUBMISSION)


class EdgeKind(enum.Enum):
    """Kinds of relationships (edges run ancestor -> descendant)."""

    #: The user followed a link: source visit -> target visit.
    LINK = "link"
    #: The hop relationship inside a server redirect chain.
    REDIRECT = "redirect"
    #: Top-level page -> embedded content it loaded.
    EMBED = "embed"
    #: Location-bar navigation: previous page -> new page.  The
    #: relationship browsers drop entirely (section 3.2).
    TYPED_FROM = "typed_from"
    #: Bookmark object -> the visit its activation produced.
    BOOKMARK_CLICK = "bookmark_click"
    #: The visit during which a bookmark was created -> bookmark object.
    BOOKMARKED = "bookmarked"
    #: Search term -> the results-page visit it generated.
    SEARCHED = "searched"
    #: The visit from which a form was submitted -> submission object.
    FORM_FROM = "form_from"
    #: Form submission object -> the result-page visit.
    FORM_GENERATED = "form_generated"
    #: Hosting page visit -> download object.
    DOWNLOADED = "downloaded"
    #: Temporal co-presence: earlier-opened visit -> later-opened visit
    #: ("the first node opened in a time span points to later nodes",
    #: section 3.2's arbitrary time-ordering rule).
    CO_OPEN = "co_open"

    @property
    def is_user_action(self) -> bool:
        """Whether a deliberate user gesture created this edge."""
        return self in (
            EdgeKind.LINK,
            EdgeKind.TYPED_FROM,
            EdgeKind.BOOKMARK_CLICK,
            EdgeKind.BOOKMARKED,
            EdgeKind.SEARCHED,
            EdgeKind.FORM_FROM,
            EdgeKind.FORM_GENERATED,
            EdgeKind.DOWNLOADED,
        )

    @property
    def is_first_class(self) -> bool:
        """Whether 2009 browsers already recorded this relationship."""
        return self in (EdgeKind.LINK, EdgeKind.REDIRECT, EdgeKind.EMBED)

    @property
    def is_lineage(self) -> bool:
        """Whether the edge carries causal lineage (vs. co-occurrence).

        CO_OPEN edges relate things the user saw together; they are not
        ancestry, and lineage queries must not traverse them.
        """
        return self is not EdgeKind.CO_OPEN


#: Edge kinds that personalization-style neighborhood expansion follows
#: by default: user actions plus the lineage-relevant automatic kinds
#: collapsed away (section 3.2 suggests unifying redirect/embed chains
#: rather than walking them).
PERSONALIZATION_EDGE_KINDS = frozenset(
    kind for kind in EdgeKind if kind.is_user_action
)

#: Edge kinds lineage queries traverse (everything causal).
LINEAGE_EDGE_KINDS = frozenset(kind for kind in EdgeKind if kind.is_lineage)

#: Second-class relationships: what the provenance capture adds over a
#: 2009 browser's history store.
SECOND_CLASS_EDGE_KINDS = frozenset(
    kind for kind in EdgeKind if not kind.is_first_class
)
