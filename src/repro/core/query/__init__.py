"""Provenance query layer: the paper's four use cases plus primitives.

* :mod:`~repro.core.query.contextual` — use case 2.1
* :mod:`~repro.core.query.personalize` — use case 2.2
* :mod:`~repro.core.query.temporal` — use case 2.3
* :mod:`~repro.core.query.lineage` — use case 2.4
* :mod:`~repro.core.query.timebound` — the 200 ms bounding (E5)
* :mod:`~repro.core.query.engine` — one facade over all of it
"""

from repro.core.query.contextual import (
    ContextualHit,
    ContextualParams,
    ContextualSearch,
)
from repro.core.query.engine import ProvenanceQueryEngine
from repro.core.query.lineage import (
    LineageAnswer,
    LineageQuery,
    LineageStep,
    RecognizabilityModel,
)
from repro.core.query.suggest import ContextSuggestion, ProvenanceSuggest
from repro.core.query.personalize import (
    AugmentedQuery,
    PersonalizerParams,
    QueryPersonalizer,
)
from repro.core.query.temporal import TemporalHit, TemporalSearch
from repro.core.query.textindex import NodeTextIndex
from repro.core.query.timebound import BoundedResult, Deadline, run_bounded
from repro.core.query.traversal import (
    Visit,
    descendants_of_kind,
    first_matching_ancestor,
    path_between,
    walk_ancestors,
    walk_descendants,
)

__all__ = [
    "AugmentedQuery",
    "BoundedResult",
    "ContextSuggestion",
    "ContextualHit",
    "ContextualParams",
    "ContextualSearch",
    "Deadline",
    "LineageAnswer",
    "LineageQuery",
    "LineageStep",
    "NodeTextIndex",
    "PersonalizerParams",
    "ProvenanceQueryEngine",
    "ProvenanceSuggest",
    "QueryPersonalizer",
    "RecognizabilityModel",
    "TemporalHit",
    "TemporalSearch",
    "Visit",
    "descendants_of_kind",
    "first_matching_ancestor",
    "path_between",
    "run_bounded",
    "walk_ancestors",
    "walk_descendants",
]
