"""Download lineage queries (use case 2.4).

"What the user really wants is, starting from a known location, the
sequence of actions that resulted in the download — that is, the
lineage of the download."

Three queries, straight from the paper's text:

* :meth:`LineageQuery.first_recognizable_ancestor` — "Find the first
  ancestor of this file that the user is likely to recognize", with
  recognizability "defined in terms of history, e.g., the number of
  visits the user has made to the page";
* :meth:`LineageQuery.lineage_path` — the hop-by-hop chain from that
  recognizable ancestor down to the download (the forensic narrative);
* :meth:`LineageQuery.downloads_descending_from` — "Find all
  descendants of this page that are downloads", the untrusted-page
  virus sweep.

Lineage traversal uses *all* causal edge kinds, including redirects
and embeds: unlike personalization, forensics must see the automatic
hops (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import ProvenanceGraph
from repro.core.model import ProvNode
from repro.core.query.timebound import Deadline
from repro.core.query.traversal import (
    Visit,
    descendants_of_kind,
    first_matching_ancestor,
    path_between,
    walk_ancestors,
)
from repro.core.taxonomy import LINEAGE_EDGE_KINDS, NodeKind
from repro.errors import QueryError


@dataclass(frozen=True)
class RecognizabilityModel:
    """Scores how likely the user is to recognize a page.

    The paper's suggestion — visit count — is the backbone; typed
    navigations and bookmarks are stronger recognition signals (the
    user knew the address / chose to keep it), so they weigh extra.
    The typed bonus is deliberately below ``min_visits - 1``: a URL
    typed (or pasted) exactly once must not count as recognized — the
    malware-lure case is precisely a once-pasted address.
    """

    min_visits: int = 3
    typed_bonus: float = 1.5
    bookmark_bonus: float = 3.0

    def score(self, graph: ProvenanceGraph, node: ProvNode) -> float:
        if node.url is None:
            return 0.0
        instances = graph.nodes_for_url(node.url)
        visits = 0.0
        for instance_id in instances:
            instance = graph.node(instance_id)
            if instance.kind not in (NodeKind.PAGE_VISIT, NodeKind.PAGE):
                continue
            visits += 1.0
            transition = instance.attr("transition", "")
            if transition == "typed":
                visits += self.typed_bonus
            if instance.kind is NodeKind.PAGE:
                # Edge-versioned stores keep one node; weight by the
                # number of incoming traversals instead.
                visits += max(0, len(graph.in_edges(instance_id)) - 1)
        for instance_id in instances:
            if graph.node(instance_id).kind is NodeKind.BOOKMARK:
                visits += self.bookmark_bonus
        return visits

    def recognizes(self, graph: ProvenanceGraph, node: ProvNode) -> bool:
        return self.score(graph, node) >= self.min_visits


@dataclass(frozen=True, slots=True)
class LineageStep:
    """One hop in a lineage narrative."""

    node_id: str
    url: str | None
    label: str
    kind: str


@dataclass(frozen=True)
class LineageAnswer:
    """Result of a first-recognizable-ancestor query."""

    recognizable: LineageStep | None
    depth: int
    #: The full chain recognizable -> ... -> download (empty when no
    #: recognizable ancestor exists).
    path: tuple[LineageStep, ...]
    ancestors_examined: int


class LineageQuery:
    """Lineage queries over one provenance graph."""

    def __init__(
        self,
        graph: ProvenanceGraph,
        *,
        recognizer: RecognizabilityModel | None = None,
    ) -> None:
        self.graph = graph
        self.recognizer = recognizer or RecognizabilityModel()

    # -- the paper's three queries ---------------------------------------------------

    def first_recognizable_ancestor(
        self,
        node_id: str,
        *,
        max_depth: int | None = None,
        deadline: Deadline | None = None,
    ) -> LineageAnswer:
        """BFS over ancestors until one clears the recognition bar."""
        examined = 0

        def counting_predicate(node: ProvNode) -> bool:
            nonlocal examined
            examined += 1
            return self.recognizer.recognizes(self.graph, node)

        found = first_matching_ancestor(
            self.graph,
            node_id,
            counting_predicate,
            kinds=LINEAGE_EDGE_KINDS,
            max_depth=max_depth,
            deadline=deadline,
        )
        if found is None:
            return LineageAnswer(
                recognizable=None, depth=-1, path=(), ancestors_examined=examined
            )
        path_ids = path_between(
            self.graph, found.node.id, node_id, kinds=LINEAGE_EDGE_KINDS
        )
        path = tuple(self._step(step_id) for step_id in (path_ids or ()))
        return LineageAnswer(
            recognizable=self._step(found.node.id),
            depth=found.depth,
            path=path,
            ancestors_examined=examined,
        )

    def lineage_path(
        self, node_id: str, *, deadline: Deadline | None = None
    ) -> list[LineageStep]:
        """The chain from the nearest recognizable ancestor down to here."""
        answer = self.first_recognizable_ancestor(node_id, deadline=deadline)
        return list(answer.path)

    def downloads_descending_from(
        self,
        node_id: str,
        *,
        max_depth: int | None = None,
        deadline: Deadline | None = None,
    ) -> list[LineageStep]:
        """All download objects descending from *node_id*.

        For a URL with several visit instances, pass any instance and
        use :meth:`downloads_from_url` to sweep all of them.
        """
        visits = descendants_of_kind(
            self.graph,
            node_id,
            NodeKind.DOWNLOAD,
            kinds=LINEAGE_EDGE_KINDS,
            max_depth=max_depth,
            deadline=deadline,
        )
        return [self._step(visit.node.id) for visit in visits]

    def downloads_from_url(
        self,
        url: str,
        *,
        max_depth: int | None = None,
        deadline: Deadline | None = None,
    ) -> list[LineageStep]:
        """Downloads descending from *any* visit instance of *url*.

        The untrusted-page sweep: "find all downloads descending from
        that page and check them for viruses".
        """
        instance_ids = self.graph.nodes_for_url(url)
        if not instance_ids:
            raise QueryError(f"no history for URL {url!r}")
        seen: set[str] = set()
        steps: list[LineageStep] = []
        for instance_id in instance_ids:
            for step in self.downloads_descending_from(
                instance_id, max_depth=max_depth, deadline=deadline
            ):
                if step.node_id in seen:
                    continue
                seen.add(step.node_id)
                steps.append(step)
        return steps

    # -- entry points from user-visible handles ------------------------------------------

    def node_for_file(self, target_path: str) -> str | None:
        """The download node for a file on disk, by its saved path.

        This is how the use case actually starts: the user has a
        suspicious *file*, not a graph id.  Returns the most recent
        download node whose recorded ``target_path`` matches, or
        ``None``.
        """
        best: tuple[int, str] | None = None
        for node_id in self.graph.by_kind(NodeKind.DOWNLOAD):
            node = self.graph.node(node_id)
            if node.attr("target_path") == target_path:
                candidate = (node.timestamp_us, node_id)
                if best is None or candidate > best:
                    best = candidate
        return best[1] if best else None

    def file_lineage(
        self, target_path: str, *, deadline: Deadline | None = None
    ) -> LineageAnswer:
        """First-recognizable-ancestor query addressed by file path.

        Raises :class:`QueryError` when no download produced the file.
        """
        node_id = self.node_for_file(target_path)
        if node_id is None:
            raise QueryError(f"no recorded download for {target_path!r}")
        return self.first_recognizable_ancestor(node_id, deadline=deadline)

    # -- supporting queries --------------------------------------------------------------

    def ancestry(
        self,
        node_id: str,
        *,
        max_depth: int | None = None,
        deadline: Deadline | None = None,
    ) -> list[Visit]:
        """The full BFS ancestor list (nearest first) for displays."""
        return list(
            walk_ancestors(
                self.graph,
                node_id,
                kinds=LINEAGE_EDGE_KINDS,
                max_depth=max_depth,
                deadline=deadline,
            )
        )

    def _step(self, node_id: str) -> LineageStep:
        node = self.graph.node(node_id)
        return LineageStep(
            node_id=node_id,
            url=node.url,
            label=node.label,
            kind=node.kind.value,
        )
