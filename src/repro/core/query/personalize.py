"""Privacy-preserving web search personalization (use case 2.2).

"A provenance-aware browser could ... supplement a rosebud web search
with flower as an additional search term ... The search engine would
only see a search for 'rosebud flower'; it would not know anything
about the user's history."

Implementation per section 4: "term frequency analysis on the results
of a contextual history search to find terms in user history
associated with the search term."  The entire computation runs over
the local provenance graph; the only output is a short list of extra
terms.  :class:`AugmentedQuery.sent_to_engine` is the exact string
that crosses the privacy boundary — the privacy experiment audits the
engine's query log against it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.core.graph import ProvenanceGraph
from repro.core.query.contextual import ContextualSearch
from repro.core.query.timebound import Deadline
from repro.core.taxonomy import NodeKind
from repro.ir.tokenize import STOPWORDS, tokenize_filtered
from repro.web.topics import COMMON_TERMS
from repro.web.url import Url


@dataclass(frozen=True)
class AugmentedQuery:
    """A personalized web query, assembled locally."""

    original: str
    extra_terms: tuple[str, ...]

    @property
    def sent_to_engine(self) -> str:
        """The one string that leaves the user's machine."""
        if not self.extra_terms:
            return self.original
        return " ".join((self.original, *self.extra_terms))

    @property
    def was_personalized(self) -> bool:
        return bool(self.extra_terms)


@dataclass(frozen=True)
class PersonalizerParams:
    """Tuning for query augmentation."""

    max_extra_terms: int = 1
    #: How many contextual hits feed the term-frequency analysis.
    evidence_hits: int = 25
    #: Minimum weighted frequency before a term is trusted as context.
    min_weight: float = 0.5
    #: Generic web furniture never worth adding to a query.
    banned_terms: frozenset[str] = frozenset(COMMON_TERMS) | STOPWORDS

    def __post_init__(self) -> None:
        if self.max_extra_terms < 0:
            raise ValueError("max_extra_terms must be non-negative")
        if self.evidence_hits < 1:
            raise ValueError("evidence_hits must be positive")


class QueryPersonalizer:
    """Augments web queries from local provenance context."""

    def __init__(
        self,
        graph: ProvenanceGraph,
        contextual: ContextualSearch | None = None,
        params: PersonalizerParams | None = None,
    ) -> None:
        self.graph = graph
        self.contextual = contextual or ContextualSearch(graph)
        self.params = params or PersonalizerParams()

    def augment(
        self,
        query: str,
        *,
        deadline: Deadline | None = None,
    ) -> AugmentedQuery:
        """Return *query* plus history-derived context terms.

        Degrades gracefully: with no history evidence (or an expired
        deadline) the original query is returned unaugmented — never
        worse than the unpersonalized engine.
        """
        params = self.params
        if params.max_extra_terms == 0:
            return AugmentedQuery(original=query, extra_terms=())
        hits = self.contextual.search(
            query, limit=params.evidence_hits, deadline=deadline
        )
        if not hits:
            return AugmentedQuery(original=query, extra_terms=())

        # Search-engine pages are evidence-free: their text is the
        # query itself plus engine branding.  The engines in use are
        # discoverable from the graph's own search-term nodes.
        engine_hosts = self._engine_hosts()
        engine_tokens = set(tokenize_filtered(" ".join(engine_hosts)))

        query_tokens = set(tokenize_filtered(query))
        weighted: Counter[str] = Counter()
        for hit in hits:
            if hit.url is not None and _host_of(hit.url) in engine_hosts:
                continue
            tokens = tokenize_filtered(hit.label)
            if hit.url:
                tokens += [
                    token for token in tokenize_filtered(hit.url.replace("/", " "))
                ]
            if not tokens:
                continue
            # Each hit votes with its relevance, split over its tokens,
            # so one verbose page cannot dominate the analysis.
            vote = hit.score / len(tokens)
            for token in tokens:
                if token in query_tokens or token in params.banned_terms:
                    continue
                if token in engine_tokens:
                    continue
                if len(token) < 3 or token.isdigit():
                    continue
                weighted[token] += vote

        extras = [
            term for term, weight in weighted.most_common(params.max_extra_terms * 3)
            if weight >= params.min_weight
        ][: params.max_extra_terms]
        return AugmentedQuery(original=query, extra_terms=tuple(extras))

    def _engine_hosts(self) -> set[str]:
        """Search-engine hosts recorded on the graph's term nodes."""
        hosts: set[str] = set()
        for term_id in self.graph.by_kind(NodeKind.SEARCH_TERM):
            engine = self.graph.node(term_id).attr("engine")
            if isinstance(engine, str) and engine:
                hosts.add(engine.lower())
        return hosts


def _host_of(url_text: str) -> str:
    try:
        return Url.parse(url_text).host
    except Exception:  # noqa: BLE001 - non-URL evidence stays unfiltered
        return ""
