"""Incremental text index over provenance nodes.

The textual *seed* stage of contextual history search needs ranked
lexical matching over node labels and URLs.  This index wraps the IR
substrate's inverted index and tracks what it has already seen, so
interleaved capture and querying stay cheap (re-indexing only new
nodes) — the locality argument of the paper's feasibility claim.

Hidden nodes (redirect hops, embeds) are not indexed: they have no
user-meaningful text, and section 3.2 excludes them from
personalization-style queries.
"""

from __future__ import annotations

from repro.core.graph import ProvenanceGraph
from repro.core.model import ProvNode
from repro.ir.index import InvertedIndex
from repro.ir.scoring import ScoredDoc, tfidf_scores
from repro.ir.tokenize import tokenize_filtered, url_tokens


class NodeTextIndex:
    """tf-idf searchable view of a provenance graph's node text."""

    def __init__(self, graph: ProvenanceGraph) -> None:
        self.graph = graph
        self.index = InvertedIndex()
        self._indexed: set[str] = set()

    def refresh(self) -> int:
        """Index nodes added since the last refresh; return how many."""
        added = 0
        for node in self.graph.nodes():
            if node.id in self._indexed:
                continue
            self._indexed.add(node.id)
            if self._should_skip(node):
                continue
            tokens = self._tokens_for(node)
            if tokens:
                self.index.add(node.id, tokens)
            added += 1
        return added

    def seed_scores(self, query: str, *, limit: int = 50) -> dict[str, float]:
        """Textual seed: tf-idf scores for *query* over node text."""
        self.refresh()
        terms = tokenize_filtered(query)
        if not terms:
            return {}
        ranked: list[ScoredDoc] = tfidf_scores(self.index, terms)[:limit]
        return {scored.doc_id: scored.score for scored in ranked}

    def __len__(self) -> int:
        return len(self.index)

    @staticmethod
    def _should_skip(node: ProvNode) -> bool:
        return node.attr("hidden", 0) == 1

    @staticmethod
    def _tokens_for(node: ProvNode) -> list[str]:
        tokens = tokenize_filtered(node.label)
        if node.url:
            tokens += url_tokens(node.url)
        return tokens
