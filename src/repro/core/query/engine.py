"""The provenance query engine facade.

One object exposing all four use-case queries over a captured graph,
with uniform time-bounding: every method takes an optional
``budget_ms``; when set, the query runs under a deadline and returns a
:class:`~repro.core.query.timebound.BoundedResult` wrapper.

This is the object an application (or the examples) holds; the
individual query classes remain available for tuned use.
"""

from __future__ import annotations

from typing import TypeVar

from repro.core.capture import NodeInterval, ProvenanceCapture
from repro.core.graph import ProvenanceGraph
from repro.core.query.contextual import ContextualHit, ContextualParams, ContextualSearch
from repro.core.query.lineage import (
    LineageAnswer,
    LineageQuery,
    LineageStep,
    RecognizabilityModel,
)
from repro.core.query.personalize import (
    AugmentedQuery,
    PersonalizerParams,
    QueryPersonalizer,
)
from repro.core.query.temporal import TemporalHit, TemporalSearch
from repro.core.query.textindex import NodeTextIndex
from repro.core.query.timebound import BoundedResult, run_bounded

T = TypeVar("T")


class ProvenanceQueryEngine:
    """All use-case queries over one provenance graph."""

    def __init__(
        self,
        graph: ProvenanceGraph,
        intervals: list[NodeInterval] | None = None,
        *,
        contextual_params: ContextualParams | None = None,
        personalizer_params: PersonalizerParams | None = None,
        recognizer: RecognizabilityModel | None = None,
    ) -> None:
        self.graph = graph
        self.index = NodeTextIndex(graph)
        self.contextual = ContextualSearch(
            graph, contextual_params, index=self.index
        )
        self.personalizer = QueryPersonalizer(
            graph, self.contextual, personalizer_params
        )
        self.temporal = TemporalSearch(graph, intervals, index=self.index)
        self.lineage = LineageQuery(graph, recognizer=recognizer)

    @classmethod
    def from_capture(cls, capture: ProvenanceCapture, **kwargs) -> (
            "ProvenanceQueryEngine"):
        """Build an engine over a live capture's graph and intervals."""
        return cls(capture.graph, capture.intervals, **kwargs)

    # -- use case 2.1 -----------------------------------------------------------

    def contextual_search(
        self, query: str, *, limit: int = 10, budget_ms: float | None = None
    ) -> list[ContextualHit] | BoundedResult[list[ContextualHit]]:
        if budget_ms is None:
            return self.contextual.search(query, limit=limit)
        return run_bounded(
            lambda deadline: self.contextual.search(
                query, limit=limit, deadline=deadline
            ),
            budget_ms=budget_ms,
        )

    def textual_search(self, query: str, *, limit: int = 10) -> list[ContextualHit]:
        """The no-provenance baseline, for comparisons."""
        return self.contextual.textual_search(query, limit=limit)

    # -- use case 2.2 ---------------------------------------------------------------

    def personalize_query(
        self, query: str, *, budget_ms: float | None = None
    ) -> AugmentedQuery | BoundedResult[AugmentedQuery]:
        if budget_ms is None:
            return self.personalizer.augment(query)
        return run_bounded(
            lambda deadline: self.personalizer.augment(query, deadline=deadline),
            budget_ms=budget_ms,
        )

    # -- use case 2.3 -----------------------------------------------------------------

    def temporal_search(
        self,
        primary: str,
        associated: str,
        *,
        limit: int = 10,
        budget_ms: float | None = None,
    ) -> list[TemporalHit] | BoundedResult[list[TemporalHit]]:
        if budget_ms is None:
            return self.temporal.search_associated(primary, associated, limit=limit)
        return run_bounded(
            lambda deadline: self.temporal.search_associated(
                primary, associated, limit=limit, deadline=deadline
            ),
            budget_ms=budget_ms,
        )

    def window_search(
        self,
        query: str,
        start_us: int,
        end_us: int,
        *,
        limit: int = 10,
        budget_ms: float | None = None,
    ) -> list[TemporalHit] | BoundedResult[list[TemporalHit]]:
        if budget_ms is None:
            return self.temporal.search_in_window(query, start_us, end_us,
                                                  limit=limit)
        return run_bounded(
            lambda deadline: self.temporal.search_in_window(
                query, start_us, end_us, limit=limit, deadline=deadline
            ),
            budget_ms=budget_ms,
        )

    # -- use case 2.4 -------------------------------------------------------------------

    def download_lineage(
        self, node_id: str, *, budget_ms: float | None = None
    ) -> LineageAnswer | BoundedResult[LineageAnswer]:
        if budget_ms is None:
            return self.lineage.first_recognizable_ancestor(node_id)
        return run_bounded(
            lambda deadline: self.lineage.first_recognizable_ancestor(
                node_id, deadline=deadline
            ),
            budget_ms=budget_ms,
        )

    def file_lineage(
        self, target_path: str, *, budget_ms: float | None = None
    ) -> LineageAnswer | BoundedResult[LineageAnswer]:
        """Lineage addressed by the downloaded file's on-disk path."""
        if budget_ms is None:
            return self.lineage.file_lineage(target_path)
        return run_bounded(
            lambda deadline: self.lineage.file_lineage(
                target_path, deadline=deadline
            ),
            budget_ms=budget_ms,
        )

    def downloads_from(
        self, url: str, *, budget_ms: float | None = None
    ) -> list[LineageStep] | BoundedResult[list[LineageStep]]:
        if budget_ms is None:
            return self.lineage.downloads_from_url(url)
        return run_bounded(
            lambda deadline: self.lineage.downloads_from_url(
                url, deadline=deadline
            ),
            budget_ms=budget_ms,
        )
