"""Deadline-bounded query execution (claim E5).

The paper reports its queries "complete in less than 200ms in the
majority of cases and can be bound to that time in the remaining
cases".  This module supplies the bounding machinery: a
:class:`Deadline` that long-running loops poll, and
:func:`run_bounded`, which wraps a query callable and reports whether
it finished or returned a partial result.

Queries in this package are written as *anytime* algorithms: every
unbounded loop (BFS expansion, score spreading, candidate scans)
checks the deadline at iteration granularity and, when expired,
returns the best answer computed so far rather than raising.  That is
what makes the 200 ms bound a guarantee instead of a hope.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass
from typing import Generic, TypeVar

T = TypeVar("T")


class Deadline:
    """A wall-clock budget that hot loops can poll cheaply."""

    __slots__ = ("_expires_at", "budget_ms")

    def __init__(self, budget_ms: float) -> None:
        if budget_ms <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_ms = budget_ms
        self._expires_at = time.perf_counter() + budget_ms / 1000.0

    @property
    def exceeded(self) -> bool:
        return time.perf_counter() >= self._expires_at

    @property
    def remaining_ms(self) -> float:
        return max(0.0, (self._expires_at - time.perf_counter()) * 1000.0)

    @classmethod
    def unlimited(cls) -> "Deadline | None":
        """Sentinel for call sites that thread an optional deadline."""
        return None


@dataclass(frozen=True)
class BoundedResult(Generic[T]):
    """Outcome of a bounded query run."""

    value: T
    elapsed_ms: float
    completed: bool

    @property
    def within_budget(self) -> bool:
        return self.completed


def run_bounded(
    query: Callable[[Deadline], T],
    *,
    budget_ms: float = 200.0,
) -> BoundedResult[T]:
    """Run *query* under a fresh deadline and time it.

    *query* receives the deadline and must honor it (all query classes
    in this package do).  ``completed`` is False when the deadline
    expired before the callable returned — the value is then a partial
    result, not garbage.
    """
    deadline = Deadline(budget_ms)
    start = time.perf_counter()
    value = query(deadline)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    return BoundedResult(
        value=value,
        elapsed_ms=elapsed_ms,
        completed=not deadline.exceeded,
    )
