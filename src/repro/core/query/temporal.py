"""Time-contextual history search (use case 2.3).

"A history search for 'wine associated with plane tickets' is both
natural to the user and likely to return the desired result."

Two time relationships are available, per section 3.2:

* **co-open edges** — captured live when close events are recorded
  (the paper's proposed fix to "every page is always open");
* **display intervals** — the raw open/close records, supporting
  window queries ("around the time I was booking flights").

The associated search scores a candidate by its own match to the
primary terms times the best match of any *time-neighbor* to the
associated terms.  Both factors come from the same text index, so the
comparison against plain textual search isolates exactly the temporal
signal.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.core.capture import NodeInterval
from repro.core.graph import ProvenanceGraph
from repro.core.query.textindex import NodeTextIndex
from repro.core.query.timebound import Deadline
from repro.core.taxonomy import EdgeKind

_CO_OPEN_ONLY = frozenset({EdgeKind.CO_OPEN})


@dataclass(frozen=True, slots=True)
class TemporalHit:
    """One time-contextual search result."""

    node_id: str
    url: str | None
    label: str
    score: float
    #: The time-neighbor that satisfied the association, if any.
    associated_node_id: str | None


class TemporalSearch:
    """Queries over time relationships in a provenance graph."""

    def __init__(
        self,
        graph: ProvenanceGraph,
        intervals: list[NodeInterval] | None = None,
        *,
        index: NodeTextIndex | None = None,
    ) -> None:
        self.graph = graph
        self.intervals = sorted(intervals or [], key=lambda iv: iv.opened_us)
        self._open_starts = [iv.opened_us for iv in self.intervals]
        self.index = index or NodeTextIndex(graph)

    # -- co-open neighborhood ----------------------------------------------------

    def co_open_neighbors(self, node_id: str) -> list[str]:
        """Nodes that shared screen time with *node_id* (via CO_OPEN)."""
        neighbors = self.graph.children(node_id, _CO_OPEN_ONLY)
        neighbors += self.graph.parents(node_id, _CO_OPEN_ONLY)
        return neighbors

    def nodes_open_during(self, start_us: int, end_us: int) -> list[str]:
        """Nodes whose display interval intersects [start_us, end_us).

        Binary-searches the interval list by open time; intervals are
        short relative to history span, so scanning the candidate
        window is near-linear in matches.
        """
        if end_us <= start_us:
            return []
        # Any interval opening before end_us may intersect; intervals
        # opening after end_us cannot.
        cutoff = bisect.bisect_left(self._open_starts, end_us)
        result = []
        for interval in self.intervals[:cutoff]:
            if interval.closed_us > start_us:
                result.append(interval.node_id)
        return result

    # -- associated search (the wine/tickets query) ------------------------------------

    def search_associated(
        self,
        primary: str,
        associated: str,
        *,
        limit: int = 10,
        deadline: Deadline | None = None,
    ) -> list[TemporalHit]:
        """'primary associated with associated' history search.

        Candidates match *primary* textually; their score is multiplied
        by ``1 + best association match`` over pages open at the same
        time, so temporal confirmation re-orders but never erases
        textual evidence.
        """
        primary_scores = self.index.seed_scores(primary, limit=200)
        if not primary_scores:
            return []
        associated_scores = self.index.seed_scores(associated, limit=200)

        hits: list[TemporalHit] = []
        for node_id, base_score in primary_scores.items():
            if deadline is not None and deadline.exceeded:
                break
            best_neighbor: str | None = None
            best_assoc = 0.0
            for neighbor in self.co_open_neighbors(node_id):
                assoc = associated_scores.get(neighbor, 0.0)
                if assoc > best_assoc:
                    best_assoc = assoc
                    best_neighbor = neighbor
            node = self.graph.node(node_id)
            hits.append(
                TemporalHit(
                    node_id=node_id,
                    url=node.url,
                    label=node.label,
                    score=base_score * (1.0 + best_assoc),
                    associated_node_id=best_neighbor,
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.node_id))
        return self._dedupe(hits, limit)

    def search_in_window(
        self,
        query: str,
        start_us: int,
        end_us: int,
        *,
        limit: int = 10,
        deadline: Deadline | None = None,
    ) -> list[TemporalHit]:
        """Textual search restricted to pages displayed in a window.

        This is the recall-model query: "I saw it around then".
        """
        open_nodes = set(self.nodes_open_during(start_us, end_us))
        if not open_nodes:
            return []
        scores = self.index.seed_scores(query, limit=1000)
        hits: list[TemporalHit] = []
        for node_id, score in scores.items():
            if deadline is not None and deadline.exceeded:
                break
            if node_id not in open_nodes:
                continue
            node = self.graph.node(node_id)
            hits.append(
                TemporalHit(
                    node_id=node_id,
                    url=node.url,
                    label=node.label,
                    score=score,
                    associated_node_id=None,
                )
            )
        hits.sort(key=lambda hit: (-hit.score, hit.node_id))
        return self._dedupe(hits, limit)

    # -- internals ----------------------------------------------------------------------

    @staticmethod
    def _dedupe(hits: list[TemporalHit], limit: int) -> list[TemporalHit]:
        """One hit per URL (visit instances collapse to their best)."""
        seen: set[str] = set()
        unique: list[TemporalHit] = []
        for hit in hits:
            key = hit.url or hit.node_id
            if key in seen:
                continue
            seen.add(key)
            unique.append(hit)
            if len(unique) >= limit:
                break
        return unique
