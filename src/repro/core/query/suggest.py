"""Provenance-aware location-bar suggestions (extension).

The paper's thesis is that characterizing history as provenance
"enables new browser functionality"; this module applies it to the
flagship history feature its introduction cites — the smart location
bar.  Firefox's awesomebar ranks by frecency plus adaptive input
pairs.  Both are *global*: they ignore what the user is doing right
now.  Provenance knows the current page, and history knows where the
user tends to go *from here*.

:class:`ProvenanceSuggest` re-ranks awesomebar suggestions by the
frequency with which each suggested URL has historically descended
from the current page (any user-action path within ``hops``), so
typing "ga" on a film page and on a nursery page can complete
differently.  Falls back to pure frecency order when there is no
context — never worse than the baseline.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.browser.awesomebar import AwesomeBar, BarSuggestion
from repro.core.graph import ProvenanceGraph
from repro.core.taxonomy import PERSONALIZATION_EDGE_KINDS


@dataclass(frozen=True, slots=True)
class ContextSuggestion:
    """One re-ranked suggestion."""

    url: str
    title: str
    frecency: int
    #: Historical transitions from (any visit of) the current page to
    #: (any visit of) this URL within the hop budget.
    context_hits: int


class ProvenanceSuggest:
    """Context-aware autocomplete over awesomebar + provenance."""

    def __init__(
        self,
        graph: ProvenanceGraph,
        awesomebar: AwesomeBar,
        *,
        hops: int = 2,
    ) -> None:
        if hops < 1:
            raise ValueError("hops must be >= 1")
        self.graph = graph
        self.awesomebar = awesomebar
        self.hops = hops

    def suggest(
        self,
        text: str,
        *,
        current_url: str | None = None,
        limit: int = 6,
    ) -> list[ContextSuggestion]:
        """Suggestions for *text*, contextualized by *current_url*."""
        base: list[BarSuggestion] = self.awesomebar.suggest(
            text, limit=limit * 3
        )
        if not base:
            return []
        context = (
            self._descendant_url_counts(current_url)
            if current_url is not None else Counter()
        )
        ranked = sorted(
            base,
            key=lambda s: (
                -context.get(s.url, 0),
                not s.adaptive,
                -s.frecency,
                s.url,
            ),
        )
        return [
            ContextSuggestion(
                url=suggestion.url,
                title=suggestion.title,
                frecency=suggestion.frecency,
                context_hits=context.get(suggestion.url, 0),
            )
            for suggestion in ranked[:limit]
        ]

    def _descendant_url_counts(self, current_url: str) -> Counter[str]:
        """How often each URL historically followed *current_url*.

        Aggregated over every visit instance of the current page —
        this is the query that is awkward on Places (join visits by
        URL, walk from_visit forward... which Places cannot do at all
        for typed or search navigations) and trivial on the graph.
        """
        counts: Counter[str] = Counter()
        for instance_id in self.graph.nodes_for_url(current_url):
            reached = self.graph.descendants(
                instance_id,
                kinds=PERSONALIZATION_EDGE_KINDS,
                max_depth=self.hops,
            )
            for node_id in reached:
                node = self.graph.node(node_id)
                if node.url is not None and node.url != current_url:
                    counts[node.url] += 1
        return counts
