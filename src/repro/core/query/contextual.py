"""Contextual history search (use case 2.1).

"Browser provenance would show that Citizen Kane descends from the
search term rosebud.  Therefore, a provenance-aware browser could
evaluate and return Citizen Kane in its history search results."

The algorithm follows the paper's description of Shah et al.: perform
a textual search, then reorder (and *extend*) results by the relevance
of their provenance neighbors:

1. **Seed** — tf-idf match of the query against node text (labels and
   URLs).  This alone is the textual baseline.
2. **Expand** — spread seed scores across user-action provenance edges
   (:func:`repro.core.ranking.spread_scores`).  A page reached *from*
   the rosebud search inherits relevance even though its own text
   never says rosebud.
3. **Rank** — blend seed and spread mass, deduplicate visit instances
   to one hit per URL, and return the top results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graph import ProvenanceGraph
from repro.core.query.textindex import NodeTextIndex
from repro.core.query.timebound import Deadline
from repro.core.ranking import ExpansionParams, spread_scores
from repro.core.taxonomy import NodeKind


@dataclass(frozen=True)
class ContextualParams:
    """Tuning for contextual search."""

    seed_limit: int = 50
    #: Weight of spread (neighborhood) score relative to seed score.
    context_weight: float = 1.0
    expansion: ExpansionParams = field(default_factory=ExpansionParams)
    #: Node kinds eligible to appear as results (search terms and form
    #: submissions participate in spreading but are not results a
    #: history UI would show).
    result_kinds: frozenset[NodeKind] = frozenset(
        {NodeKind.PAGE_VISIT, NodeKind.PAGE, NodeKind.DOWNLOAD, NodeKind.BOOKMARK}
    )

    def __post_init__(self) -> None:
        if self.seed_limit < 1:
            raise ValueError("seed_limit must be positive")
        if self.context_weight < 0:
            raise ValueError("context_weight must be non-negative")


@dataclass(frozen=True, slots=True)
class ContextualHit:
    """One contextual history search result."""

    node_id: str
    url: str | None
    label: str
    score: float
    #: The purely textual component (0 for results found only through
    #: provenance — the Citizen Kane case).
    seed_score: float

    @property
    def found_by_provenance_only(self) -> bool:
        return self.seed_score == 0.0


class ContextualSearch:
    """Provenance-aware history search over one graph."""

    def __init__(
        self,
        graph: ProvenanceGraph,
        params: ContextualParams | None = None,
        *,
        index: NodeTextIndex | None = None,
    ) -> None:
        self.graph = graph
        self.params = params or ContextualParams()
        self.index = index or NodeTextIndex(graph)

    def search(
        self,
        query: str,
        *,
        limit: int = 10,
        deadline: Deadline | None = None,
    ) -> list[ContextualHit]:
        """Run the full seed -> expand -> rank pipeline."""
        seeds = self.index.seed_scores(query, limit=self.params.seed_limit)
        if not seeds:
            return []
        scores = spread_scores(
            self.graph, seeds, self.params.expansion, deadline=deadline
        )
        return self._rank(scores, seeds, limit)

    def textual_search(self, query: str, *, limit: int = 10) -> list[ContextualHit]:
        """The seed stage alone — the baseline the paper contrasts."""
        seeds = self.index.seed_scores(query, limit=self.params.seed_limit)
        return self._rank(seeds, seeds, limit)

    # -- internals ---------------------------------------------------------------

    def _rank(
        self,
        scores: dict[str, float],
        seeds: dict[str, float],
        limit: int,
    ) -> list[ContextualHit]:
        """Blend, deduplicate by URL, and cut to *limit*."""
        best_by_key: dict[str, ContextualHit] = {}
        weight = self.params.context_weight
        for node_id, score in scores.items():
            node = self.graph.get(node_id)
            if node is None or node.kind not in self.params.result_kinds:
                continue
            if node.attr("hidden", 0) == 1:
                continue
            seed = seeds.get(node_id, 0.0)
            blended = seed + weight * (score - seed)
            if blended <= 0.0:
                continue
            key = node.url or node_id
            hit = ContextualHit(
                node_id=node_id,
                url=node.url,
                label=node.label,
                score=blended,
                seed_score=seed,
            )
            existing = best_by_key.get(key)
            if existing is None or existing.score < hit.score:
                best_by_key[key] = hit
        ranked = sorted(
            best_by_key.values(), key=lambda hit: (-hit.score, hit.node_id)
        )
        return ranked[:limit]
