"""Bounded graph traversal helpers shared by the query layer.

Thin, deadline-aware wrappers over the adjacency primitives in
:class:`~repro.core.graph.ProvenanceGraph`.  Everything here is
breadth-first — nearest-context-first is the right order for every
use case in the paper (lineage wants the *first* recognizable
ancestor; neighborhood queries want close context before far).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.graph import ProvenanceGraph
from repro.core.model import ProvNode
from repro.core.query.timebound import Deadline
from repro.core.taxonomy import EdgeKind, NodeKind
from repro.errors import UnknownNodeError


@dataclass(frozen=True, slots=True)
class Visit:
    """One node reached during traversal."""

    node: ProvNode
    depth: int


def walk_ancestors(
    graph: ProvenanceGraph,
    start: str,
    *,
    kinds: frozenset[EdgeKind] | None = None,
    max_depth: int | None = None,
    deadline: Deadline | None = None,
):
    """Yield ancestors of *start* breadth-first as :class:`Visit`.

    Stops early when the deadline expires — callers receive the
    nearest ancestors found so far, which is the useful prefix.
    """
    yield from _walk(graph, start, forward=False, kinds=kinds,
                     max_depth=max_depth, deadline=deadline)


def walk_descendants(
    graph: ProvenanceGraph,
    start: str,
    *,
    kinds: frozenset[EdgeKind] | None = None,
    max_depth: int | None = None,
    deadline: Deadline | None = None,
):
    """Yield descendants of *start* breadth-first as :class:`Visit`."""
    yield from _walk(graph, start, forward=True, kinds=kinds,
                     max_depth=max_depth, deadline=deadline)


def _walk(
    graph: ProvenanceGraph,
    start: str,
    *,
    forward: bool,
    kinds: frozenset[EdgeKind] | None,
    max_depth: int | None,
    deadline: Deadline | None,
):
    if start not in graph:
        raise UnknownNodeError(start)
    queue: deque[tuple[str, int]] = deque([(start, 0)])
    seen = {start}
    while queue:
        if deadline is not None and deadline.exceeded:
            return
        current, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        edges = (
            graph.out_edges(current, kinds) if forward
            else graph.in_edges(current, kinds)
        )
        for edge in edges:
            neighbor = edge.dst if forward else edge.src
            if neighbor in seen:
                continue
            seen.add(neighbor)
            yield Visit(node=graph.node(neighbor), depth=depth + 1)
            queue.append((neighbor, depth + 1))


def first_matching_ancestor(
    graph: ProvenanceGraph,
    start: str,
    predicate: Callable[[ProvNode], bool],
    *,
    kinds: frozenset[EdgeKind] | None = None,
    max_depth: int | None = None,
    deadline: Deadline | None = None,
) -> Visit | None:
    """The nearest ancestor satisfying *predicate*, or ``None``."""
    for visit in walk_ancestors(graph, start, kinds=kinds,
                                max_depth=max_depth, deadline=deadline):
        if predicate(visit.node):
            return visit
    return None


def descendants_of_kind(
    graph: ProvenanceGraph,
    start: str,
    node_kind: NodeKind,
    *,
    kinds: frozenset[EdgeKind] | None = None,
    max_depth: int | None = None,
    deadline: Deadline | None = None,
) -> list[Visit]:
    """All descendants of *start* whose node kind is *node_kind*."""
    return [
        visit for visit in walk_descendants(
            graph, start, kinds=kinds, max_depth=max_depth, deadline=deadline
        )
        if visit.node.kind is node_kind
    ]


def path_between(
    graph: ProvenanceGraph,
    ancestor: str,
    descendant: str,
    *,
    kinds: frozenset[EdgeKind] | None = None,
    max_depth: int | None = None,
) -> list[str] | None:
    """A shortest ancestor->descendant path as node ids, or ``None``.

    BFS backward from *descendant* with parent pointers; the forensics
    displays ("how did I get to this download?") want the hop list,
    not just the endpoint.
    """
    if ancestor not in graph:
        raise UnknownNodeError(ancestor)
    if descendant not in graph:
        raise UnknownNodeError(descendant)
    if ancestor == descendant:
        return [ancestor]
    parents: dict[str, str] = {}
    queue: deque[tuple[str, int]] = deque([(descendant, 0)])
    seen = {descendant}
    while queue:
        current, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for edge in graph.in_edges(current, kinds):
            if edge.src in seen:
                continue
            seen.add(edge.src)
            parents[edge.src] = current
            if edge.src == ancestor:
                path = [ancestor]
                while path[-1] != descendant:
                    path.append(parents[path[-1]])
                return path
            queue.append((edge.src, depth + 1))
    return None
