"""Tree-structured history view (paper, section 3.1).

"If both pages and links are versioned as new instances, and only link
relationships are considered, the result is a tree structure" — the
property Ayers & Stasko exploited for graphical history, and which the
paper suggests "could also be used for efficient storage and query".

:func:`build_history_forest` materializes that view: every visit node
gets at most one parent (its earliest causal in-edge), producing a
forest whose roots are session starts (typed URLs, bookmarks, search
landings with no context).  The module also provides the statistics
(depth distribution, branching) the treeview storage argument rests
on, and an ASCII renderer used by the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.graph import ProvenanceGraph
from repro.core.taxonomy import LINEAGE_EDGE_KINDS, EdgeKind, NodeKind


@dataclass
class TreeNode:
    """One node of the history forest."""

    node_id: str
    label: str
    url: str | None
    children: list["TreeNode"] = field(default_factory=list)

    def walk(self):
        """Yield (node, depth) pairs in depth-first order."""
        stack: list[tuple[TreeNode, int]] = [(self, 0)]
        while stack:
            node, depth = stack.pop()
            yield node, depth
            for child in reversed(node.children):
                stack.append((child, depth + 1))

    def size(self) -> int:
        return sum(1 for _ in self.walk())

    def height(self) -> int:
        return max(depth for _, depth in self.walk()) + 1


@dataclass(frozen=True)
class ForestStats:
    """Shape statistics for a history forest."""

    trees: int
    nodes: int
    max_depth: int
    mean_branching: float


def build_history_forest(
    graph: ProvenanceGraph,
    *,
    edge_kinds: frozenset[EdgeKind] = LINEAGE_EDGE_KINDS,
    node_kinds: frozenset[NodeKind] = frozenset(
        {NodeKind.PAGE_VISIT, NodeKind.PAGE, NodeKind.DOWNLOAD}
    ),
) -> list[TreeNode]:
    """Reduce the provenance DAG to a forest.

    Each eligible node keeps only its *earliest* in-edge (the action
    that first produced it); remaining edges are view-dropped, not
    deleted.  Under node versioning every visit has at most one causal
    in-edge anyway, so the reduction is usually lossless — the stats
    in the treeview bench quantify how often it is not.
    """
    parent_of: dict[str, str] = {}
    eligible = {
        node.id for node in graph.nodes() if node.kind in node_kinds
    }
    for node_id in eligible:
        in_edges = [
            edge for edge in graph.in_edges(node_id, edge_kinds)
            if edge.src in eligible
        ]
        if in_edges:
            earliest = min(in_edges, key=lambda edge: (edge.timestamp_us, edge.id))
            parent_of[node_id] = earliest.src

    trees: dict[str, TreeNode] = {}

    def materialize(node_id: str) -> TreeNode:
        existing = trees.get(node_id)
        if existing is not None:
            return existing
        node = graph.node(node_id)
        tree_node = TreeNode(node_id=node_id, label=node.label, url=node.url)
        trees[node_id] = tree_node
        return tree_node

    roots: list[TreeNode] = []
    ordered = sorted(eligible, key=lambda nid: (graph.node(nid).timestamp_us, nid))
    for node_id in ordered:
        tree_node = materialize(node_id)
        parent_id = parent_of.get(node_id)
        if parent_id is None:
            roots.append(tree_node)
        else:
            materialize(parent_id).children.append(tree_node)
    return roots


def forest_stats(roots: list[TreeNode]) -> ForestStats:
    """Shape statistics over a forest."""
    nodes = 0
    max_depth = 0
    internal = 0
    child_count = 0
    for root in roots:
        for node, depth in root.walk():
            nodes += 1
            max_depth = max(max_depth, depth)
            if node.children:
                internal += 1
                child_count += len(node.children)
    return ForestStats(
        trees=len(roots),
        nodes=nodes,
        max_depth=max_depth,
        mean_branching=(child_count / internal) if internal else 0.0,
    )


def render_tree(root: TreeNode, *, max_nodes: int = 50) -> str:
    """ASCII-render a tree (truncated for display)."""
    lines: list[str] = []
    for node, depth in root.walk():
        if len(lines) >= max_nodes:
            lines.append("  ... (truncated)")
            break
        text = node.label or node.url or node.node_id
        lines.append(f"{'  ' * depth}- {text}")
    return "\n".join(lines)
