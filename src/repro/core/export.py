"""Provenance graph export and import.

Interchange formats for the homogeneous graph:

* :func:`to_json` / :func:`from_json` — a complete, lossless JSON
  encoding (nodes, edges, attributes), for moving histories between
  tools or archiving a redacted copy;
* :func:`to_dot` — Graphviz DOT for visual inspection of lineage
  neighborhoods (whole 25k-node graphs are not plottable; the function
  takes a node set, typically a lineage path or query neighborhood).

JSON round-trips exactly; tests enforce it property-style.
"""

from __future__ import annotations

import json
from collections.abc import Iterable

from repro.canon import canonical_json
from repro.core.graph import ProvenanceGraph
from repro.core.model import ProvNode
from repro.core.taxonomy import EdgeKind, NodeKind

FORMAT_VERSION = 1

#: Node fill colors for DOT output, by kind value.
_DOT_COLORS = {
    "page_visit": "lightblue",
    "page": "lightblue",
    "search_term": "gold",
    "form_submission": "khaki",
    "bookmark": "palegreen",
    "download": "salmon",
}


def to_json(graph: ProvenanceGraph, *, indent: int | None = None) -> str:
    """Serialize the whole graph to a JSON string.

    The default (``indent=None``) form is **canonical**: sorted keys,
    no whitespace — byte-stable, so the same graph always serializes
    to the same bytes and the string can be hashed or signed (audit
    reports digest it).  ``indent`` trades that for readability.
    """
    payload = {
        "format": "repro-provenance",
        "version": FORMAT_VERSION,
        "enforce_dag": graph.enforce_dag,
        "nodes": [
            {
                "id": node.id,
                "kind": node.kind.value,
                "timestamp_us": node.timestamp_us,
                "label": node.label,
                "url": node.url,
                "attrs": dict(node.attrs),
            }
            for node in graph.nodes()
        ],
        "edges": [
            {
                "id": edge.id,
                "kind": edge.kind.value,
                "src": edge.src,
                "dst": edge.dst,
                "timestamp_us": edge.timestamp_us,
                "attrs": dict(edge.attrs),
            }
            for edge in graph.edges()
        ],
    }
    if indent is None:
        # json.dumps without explicit separators pads with spaces even
        # at indent=None; the canonical form must be compact.
        return canonical_json(payload).decode("utf-8")
    return json.dumps(payload, indent=indent, sort_keys=True)


def from_json(text: str) -> ProvenanceGraph:
    """Reconstruct a graph serialized by :func:`to_json`.

    Raises :class:`ValueError` for unknown formats or versions.
    """
    payload = json.loads(text)
    if payload.get("format") != "repro-provenance":
        raise ValueError("not a repro provenance export")
    if payload.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported export version: {payload.get('version')!r}"
        )
    graph = ProvenanceGraph(enforce_dag=payload.get("enforce_dag", True))
    for entry in payload["nodes"]:
        graph.add_node(
            ProvNode(
                id=entry["id"],
                kind=NodeKind(entry["kind"]),
                timestamp_us=entry["timestamp_us"],
                label=entry.get("label", ""),
                url=entry.get("url"),
                attrs=entry.get("attrs", {}),
            )
        )
    for entry in sorted(payload["edges"], key=lambda e: e["id"]):
        graph.add_edge(
            EdgeKind(entry["kind"]),
            entry["src"],
            entry["dst"],
            timestamp_us=entry["timestamp_us"],
            attrs=entry.get("attrs", {}),
        )
    return graph


def to_dot(
    graph: ProvenanceGraph,
    node_ids: Iterable[str],
    *,
    title: str = "provenance",
) -> str:
    """Render the induced subgraph over *node_ids* as Graphviz DOT.

    Edges between included nodes are kept; labels are truncated for
    readability.  Automatic (non-user-action) edges render dashed,
    matching the paper's first-class/second-class distinction visually.
    """
    included = set(node_ids)
    lines = [f'digraph "{_escape(title)}" {{', "  rankdir=TB;",
             '  node [style=filled, shape=box, fontsize=10];']
    for node_id in included:
        node = graph.node(node_id)
        color = _DOT_COLORS.get(node.kind.value, "white")
        label = node.label or node.url or node.id
        if len(label) > 40:
            label = label[:37] + "..."
        lines.append(
            f'  "{_escape(node_id)}" [label="{_escape(label)}",'
            f' fillcolor={color}];'
        )
    for edge in graph.edges():
        if edge.src in included and edge.dst in included:
            style = "solid" if edge.is_user_action else "dashed"
            lines.append(
                f'  "{_escape(edge.src)}" -> "{_escape(edge.dst)}"'
                f' [label="{edge.kind.value}", style={style}, fontsize=8];'
            )
    lines.append("}")
    return "\n".join(lines)


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')
