"""Provenance retention and redaction.

Section 4 of the paper flags privacy as the open problem: "browser
history potentially contains a great deal of sensitive personal data".
A browser that keeps provenance needs the operations every browser
offers for plain history — expire old entries, forget a site — but on
a *graph*, where deletion has semantics: removing a node can sever the
lineage of everything downstream of it.

Two operations are provided, mirroring the two browser affordances:

* :func:`expire_before` — age-based expiration ("keep 90 days").
  Expired interior nodes are not simply dropped: their lineage is
  *bridged* — each expired node's parents are connected to its
  children with BRIDGED-marked edges — so that descendants keep
  truthful (if less detailed) ancestry.  This mirrors how provenance
  systems compact old lineage rather than break it.
* :func:`forget_site` — redaction ("forget everything about
  example.com").  Redaction deliberately does **not** bridge: the
  user's intent is that the connection itself disappear.  Downstream
  lineage becomes genuinely unanswerable, and the function reports
  exactly how many nodes lost ancestry, making the privacy/utility
  trade-off measurable.

Both operate on the in-memory graph and return a report; persisting
the result is a normal :meth:`ProvenanceStore.save_graph` of the new
graph.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.graph import ProvenanceGraph
from repro.core.model import ProvEdge
from repro.core.taxonomy import EdgeKind
from repro.web.url import Url


@dataclass(frozen=True)
class RetentionReport:
    """What an expiration pass did."""

    nodes_before: int
    nodes_removed: int
    edges_removed: int
    bridge_edges_added: int

    @property
    def nodes_after(self) -> int:
        return self.nodes_before - self.nodes_removed


@dataclass(frozen=True)
class RedactionReport:
    """What a forget-site pass did."""

    nodes_removed: int
    edges_removed: int
    #: Nodes that still exist but lost every lineage ancestor.
    orphaned_descendants: int


def expire_before(
    graph: ProvenanceGraph,
    cutoff_us: int,
    *,
    bridge: bool = True,
) -> tuple[ProvenanceGraph, RetentionReport]:
    """Return a new graph without nodes older than *cutoff_us*.

    With ``bridge=True`` (default), for every removed node the cross
    product of its surviving lineage parents and children is connected
    with edges attributed ``bridged=1``, preserving reachability of
    ancestry across the expired region.  CO_OPEN edges are never
    bridged — co-presence is not transitive.
    """
    keep = {
        node.id for node in graph.nodes() if node.timestamp_us >= cutoff_us
    }
    removed = graph.node_count - len(keep)

    new_graph = ProvenanceGraph(enforce_dag=graph.enforce_dag)
    for node in graph.nodes():
        if node.id in keep:
            new_graph.add_node(node)

    edges_removed = 0
    kept_edges: list[ProvEdge] = []
    for edge in graph.edges():
        if edge.src in keep and edge.dst in keep:
            kept_edges.append(edge)
        else:
            edges_removed += 1
    for edge in kept_edges:
        new_graph.add_edge(
            edge.kind, edge.src, edge.dst,
            timestamp_us=edge.timestamp_us, attrs=dict(edge.attrs),
        )

    bridges = 0
    if bridge and removed:
        bridges = _bridge_expired(graph, new_graph, keep)

    report = RetentionReport(
        nodes_before=graph.node_count,
        nodes_removed=removed,
        edges_removed=edges_removed,
        bridge_edges_added=bridges,
    )
    return new_graph, report


def _bridge_expired(
    old_graph: ProvenanceGraph,
    new_graph: ProvenanceGraph,
    keep: set[str],
) -> int:
    """Connect surviving parents to surviving children across expired
    regions.

    For each surviving node with an expired lineage parent, walk up
    through expired nodes to the nearest surviving ancestors and add a
    bridge edge from each.  The walk is bounded by the expired region
    size, and each (ancestor, descendant) pair is bridged once.
    """
    added = 0
    seen_pairs: set[tuple[str, str]] = set()
    for node_id in keep:
        expired_parents = [
            edge.src for edge in old_graph.in_edges(node_id)
            if edge.src not in keep and edge.kind.is_lineage
        ]
        if not expired_parents:
            continue
        # Find surviving ancestors reachable through expired nodes only.
        frontier = list(expired_parents)
        visited: set[str] = set(frontier)
        surviving_ancestors: set[str] = set()
        while frontier:
            current = frontier.pop()
            for edge in old_graph.in_edges(current):
                if not edge.kind.is_lineage:
                    continue
                if edge.src in keep:
                    surviving_ancestors.add(edge.src)
                elif edge.src not in visited:
                    visited.add(edge.src)
                    frontier.append(edge.src)
        node_ts = new_graph.node(node_id).timestamp_us
        for ancestor in surviving_ancestors:
            pair = (ancestor, node_id)
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            new_graph.add_edge(
                EdgeKind.LINK, ancestor, node_id,
                timestamp_us=node_ts, attrs={"bridged": 1},
            )
            added += 1
    return added


def forget_site(
    graph: ProvenanceGraph,
    site: str,
) -> tuple[ProvenanceGraph, RedactionReport]:
    """Return a new graph with every node about *site* removed.

    *site* matches :attr:`repro.web.url.Url.site` (registrable domain):
    forgetting ``example.com`` removes ``www.example.com`` pages,
    ``cdn.example.com`` downloads, and the search terms whose only
    outgoing edges led there.  No bridging — the point of redaction is
    that the connection disappears.
    """
    site = site.lower()
    doomed: set[str] = set()
    for node in graph.nodes():
        if node.url is None:
            continue
        try:
            if Url.parse(node.url).site == site:
                doomed.add(node.id)
        except Exception:  # noqa: BLE001 - unparseable URL: keep the node
            continue

    # Search terms whose every child is doomed are themselves evidence
    # of the visit; remove them too.
    from repro.core.taxonomy import NodeKind

    for term_id in graph.by_kind(NodeKind.SEARCH_TERM):
        children = graph.children(term_id)
        if children and all(child in doomed for child in children):
            doomed.add(term_id)

    new_graph = ProvenanceGraph(enforce_dag=graph.enforce_dag)
    for node in graph.nodes():
        if node.id not in doomed:
            new_graph.add_node(node)
    edges_removed = 0
    for edge in graph.edges():
        if edge.src in doomed or edge.dst in doomed:
            edges_removed += 1
            continue
        new_graph.add_edge(
            edge.kind, edge.src, edge.dst,
            timestamp_us=edge.timestamp_us, attrs=dict(edge.attrs),
        )

    orphaned = 0
    for node_id in new_graph.node_ids():
        had_lineage_parent = any(
            edge.kind.is_lineage for edge in graph.in_edges(node_id)
        )
        has_lineage_parent = any(
            edge.kind.is_lineage for edge in new_graph.in_edges(node_id)
        )
        if had_lineage_parent and not has_lineage_parent:
            orphaned += 1

    report = RedactionReport(
        nodes_removed=len(doomed),
        edges_removed=edges_removed,
        orphaned_descendants=orphaned,
    )
    return new_graph, report
