"""Provenance-weighted score spreading.

The primitive behind contextual history search (use case 2.1) in the
style of Shah et al.'s provenance-aided file search: start from
textually seeded scores and *spread* relevance across provenance
edges, so that a node with relevant provenance neighbors outranks a
node whose only virtue is lexical overlap.

Spreading is symmetric (both edge directions) because relevance flows
both ways — a page is relevant if it *descends from* a relevant search
and a search is relevant if it *led to* relevant pages — while the
edge-kind filter keeps the flow on meaningful relationships (user
actions by default, per section 3.2's advice to exclude redirects and
embeds from personalization).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.graph import ProvenanceGraph
from repro.core.query.timebound import Deadline
from repro.core.taxonomy import PERSONALIZATION_EDGE_KINDS, EdgeKind


@dataclass(frozen=True)
class ExpansionParams:
    """Knobs for neighborhood expansion.

    ``damping`` is the fraction of a node's score donated to each
    neighbor per round (scores accumulate; the final vector mixes seed
    relevance with neighborhood mass).  ``rounds`` is small — the paper
    argues for *local* algorithms, and two hops already connect a
    search term to the grandchildren of its results page.

    With ``normalize_degree`` False (the default), every neighbor
    receives the full damped donation — Shah et al.'s "substantial
    weight" for first-generation descendants: the page clicked from a
    results page scores half the results page itself, regardless of
    how many siblings it has.  Setting it True divides donations by
    degree (random-walk style), which protects against hub inflation
    at the cost of diluting exactly the search-page -> result edges
    the use case depends on; the contextual ablation compares both.
    """

    rounds: int = 2
    damping: float = 0.5
    edge_kinds: frozenset[EdgeKind] = PERSONALIZATION_EDGE_KINDS
    normalize_degree: bool = False
    #: Per-round cap on nodes receiving spread, keeping worst-case work
    #: bounded (the E5 time-bounding argument needs this).
    frontier_limit: int = 2000

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError("rounds must be non-negative")
        if not 0.0 < self.damping <= 1.0:
            raise ValueError("damping must be in (0, 1]")
        if self.frontier_limit < 1:
            raise ValueError("frontier_limit must be positive")


def spread_scores(
    graph: ProvenanceGraph,
    seeds: dict[str, float],
    params: ExpansionParams | None = None,
    *,
    deadline: Deadline | None = None,
) -> dict[str, float]:
    """Spread *seeds* over the provenance neighborhood.

    Returns the accumulated score vector (seeds included).  Honors the
    deadline between rounds: a timed-out expansion returns whatever has
    accumulated so far — partial, but well-defined (fewer hops).
    """
    params = params or ExpansionParams()
    scores: dict[str, float] = dict(seeds)
    frontier = dict(seeds)
    for _round in range(params.rounds):
        if deadline is not None and deadline.exceeded:
            break
        spread: dict[str, float] = defaultdict(float)
        for node_id, score in frontier.items():
            if node_id not in graph:
                continue
            donation = score * params.damping
            neighbors = graph.children(node_id, params.edge_kinds)
            neighbors += graph.parents(node_id, params.edge_kinds)
            if not neighbors:
                continue
            share = donation
            if params.normalize_degree:
                share = donation / len(neighbors)
            for neighbor in neighbors:
                spread[neighbor] += share
        if not spread:
            break
        # Keep only the heaviest receivers to bound the frontier.
        ranked = sorted(spread.items(), key=lambda item: (-item[1], item[0]))
        frontier = dict(ranked[: params.frontier_limit])
        for node_id, gained in frontier.items():
            scores[node_id] = scores.get(node_id, 0.0) + gained
    return scores
