"""The paper's contribution: browser history as a provenance graph.

Taxonomy (:mod:`~repro.core.taxonomy`), graph and versioning policies
(:mod:`~repro.core.graph`, :mod:`~repro.core.versioning`), capture from
browser events or HTTP flows (:mod:`~repro.core.capture`,
:mod:`~repro.core.proxy`), the homogeneous SQLite store
(:mod:`~repro.core.store`), and the four use-case queries
(:mod:`~repro.core.query`).
"""

from repro.core.capture import CaptureConfig, NodeInterval, ProvenanceCapture
from repro.core.export import from_json, to_dot, to_json
from repro.core.factorize import (
    FactorizationReport,
    write_denormalized,
    write_factorized,
)
from repro.core.graph import ProvenanceGraph
from repro.core.hits import HitsParams, HitsScores, expand_root_set, hits
from repro.core.model import AttrValue, ProvEdge, ProvNode
from repro.core.proxy import ProxyCapture
from repro.core.query import (
    AugmentedQuery,
    BoundedResult,
    ContextualHit,
    ContextualParams,
    ContextualSearch,
    Deadline,
    LineageAnswer,
    LineageQuery,
    LineageStep,
    NodeTextIndex,
    PersonalizerParams,
    ProvenanceQueryEngine,
    QueryPersonalizer,
    RecognizabilityModel,
    TemporalHit,
    TemporalSearch,
    run_bounded,
)
from repro.core.ranking import ExpansionParams, spread_scores
from repro.core.retention import (
    RedactionReport,
    RetentionReport,
    expire_before,
    forget_site,
)
from repro.core.schema import SCHEMA_VERSION
from repro.core.store import ProvenanceStore
from repro.core.taxonomy import (
    LINEAGE_EDGE_KINDS,
    PERSONALIZATION_EDGE_KINDS,
    SECOND_CLASS_EDGE_KINDS,
    EdgeKind,
    NodeKind,
)
from repro.core.treeview import (
    ForestStats,
    TreeNode,
    build_history_forest,
    forest_stats,
    render_tree,
)
from repro.core.versioning import (
    EdgeVersioningPolicy,
    NodeVersioningPolicy,
    TemporalReach,
    temporal_ancestors,
    temporal_descendants,
    version_chain,
)

__all__ = [
    "LINEAGE_EDGE_KINDS",
    "PERSONALIZATION_EDGE_KINDS",
    "SCHEMA_VERSION",
    "SECOND_CLASS_EDGE_KINDS",
    "AttrValue",
    "AugmentedQuery",
    "BoundedResult",
    "CaptureConfig",
    "ContextualHit",
    "ContextualParams",
    "ContextualSearch",
    "Deadline",
    "EdgeKind",
    "EdgeVersioningPolicy",
    "ExpansionParams",
    "FactorizationReport",
    "ForestStats",
    "HitsParams",
    "HitsScores",
    "LineageAnswer",
    "LineageQuery",
    "LineageStep",
    "NodeInterval",
    "NodeKind",
    "NodeTextIndex",
    "NodeVersioningPolicy",
    "PersonalizerParams",
    "ProvEdge",
    "ProvNode",
    "ProvenanceCapture",
    "ProvenanceGraph",
    "ProvenanceQueryEngine",
    "ProvenanceStore",
    "ProxyCapture",
    "QueryPersonalizer",
    "RedactionReport",
    "RetentionReport",
    "RecognizabilityModel",
    "TemporalHit",
    "TemporalReach",
    "TemporalSearch",
    "TreeNode",
    "build_history_forest",
    "expand_root_set",
    "expire_before",
    "forget_site",
    "forest_stats",
    "hits",
    "render_tree",
    "from_json",
    "run_bounded",
    "spread_scores",
    "to_dot",
    "to_json",
    "temporal_ancestors",
    "temporal_descendants",
    "version_chain",
    "write_denormalized",
    "write_factorized",
]
