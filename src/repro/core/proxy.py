"""Proxy-vantage provenance capture (the mitmproxy substitution).

The reproduction hint notes that real in-browser capture is not
available from Python; the practical equivalent is an intercepting
HTTP proxy (mitmproxy).  This module implements that vantage point
against the simulated network: it observes
:class:`~repro.web.serving.HttpFlow` records — request URL, referrer,
redirect chain, content type, time — and nothing else.

What a proxy **can** reconstruct:

* page-visit nodes and referrer (LINK) edges,
* redirect chains,
* embed edges (sub-resource content types with a referrer),
* downloads (content-disposition / binary content types),
* search terms — they travel inside SERP URLs (``?q=...``), so even an
  out-of-browser observer gets section 3.3's descriptors.

What it **cannot** see: tabs (so no co-open intervals), typed-URL
context (no referrer is sent), bookmarks, or page closes.  The capture
ablation (E12) quantifies the difference against
:class:`~repro.core.capture.ProvenanceCapture`.
"""

from __future__ import annotations

from urllib.parse import parse_qsl

from repro.core.graph import ProvenanceGraph
from repro.core.model import ProvNode
from repro.core.taxonomy import EdgeKind, NodeKind
from repro.core.versioning import NodeVersioningPolicy, VersioningPolicy
from repro.ids import IdAllocator, content_id
from repro.web.serving import HttpFlow


class ProxyCapture:
    """Builds a provenance graph from HTTP flows alone.

    Register with ``server.add_observer(proxy)``.  Referrer edges
    resolve to the *most recent* visit node for the referrer URL —
    the only resolution a proxy can perform, and a source of (rare,
    realistic) mis-attribution when the same URL is open twice.
    """

    def __init__(self, *, policy: VersioningPolicy | None = None,
                 search_hosts: tuple[str, ...] = ("www.findit.com",)) -> None:
        self.policy = policy or NodeVersioningPolicy()
        self.graph = ProvenanceGraph(enforce_dag=self.policy.enforce_dag)
        self.search_hosts = tuple(host.lower() for host in search_hosts)
        self._alloc = IdAllocator()
        self._latest_for_url: dict[str, str] = {}
        self.flows_seen = 0

    # -- FlowObserver protocol ----------------------------------------------------

    def observe(self, flow: HttpFlow) -> None:
        self.flows_seen += 1
        if flow.content_type == "application/octet-stream":
            self._observe_download(flow)
        elif flow.content_type.startswith(("image/", "text/css", "text/javascript")):
            self._observe_embed(flow)
        else:
            self._observe_page(flow)

    # -- flow handlers ---------------------------------------------------------------

    def _observe_page(self, flow: HttpFlow) -> None:
        referrer_node = self._resolve_referrer(flow)

        chain_nodes = [
            self._visit(str(hop), flow.timestamp_us, hidden=1)
            for hop in flow.redirect_chain
        ]
        final_node = self._visit(str(flow.final), flow.timestamp_us)

        first = chain_nodes[0] if chain_nodes else final_node
        if referrer_node is not None and referrer_node != first:
            self.graph.add_edge(
                EdgeKind.LINK, referrer_node, first,
                timestamp_us=flow.timestamp_us,
            )
        previous = None
        for node in (*chain_nodes, final_node):
            if previous is not None and previous != node:
                self.graph.add_edge(
                    EdgeKind.REDIRECT, previous, node,
                    timestamp_us=flow.timestamp_us,
                )
            previous = node

        self._maybe_search_term(flow, final_node)

    def _observe_embed(self, flow: HttpFlow) -> None:
        parent = self._resolve_referrer(flow)
        embed_node = self._visit(str(flow.final), flow.timestamp_us, hidden=1)
        if parent is not None and parent != embed_node:
            self.graph.add_edge(
                EdgeKind.EMBED, parent, embed_node, timestamp_us=flow.timestamp_us
            )

    def _observe_download(self, flow: HttpFlow) -> None:
        node = ProvNode(
            id=self._alloc.next("dl"),
            kind=NodeKind.DOWNLOAD,
            timestamp_us=flow.timestamp_us,
            label=flow.final.filename or str(flow.final),
            url=str(flow.final),
        )
        self.graph.add_node(node)
        parent = self._resolve_referrer(flow)
        if parent is not None:
            self.graph.add_edge(
                EdgeKind.DOWNLOADED, parent, node.id, timestamp_us=flow.timestamp_us
            )

    # -- helpers ------------------------------------------------------------------------

    def _visit(self, url: str, when_us: int, **attrs: str | int | float) -> str:
        node = self.policy.visit_node(url, "", when_us, **attrs)
        resolved = self.policy.resolve_visit(self.graph, node)
        self._latest_for_url[url] = resolved.id
        return resolved.id

    def _resolve_referrer(self, flow: HttpFlow) -> str | None:
        if flow.referrer is None:
            return None
        return self._latest_for_url.get(str(flow.referrer))

    def _maybe_search_term(self, flow: HttpFlow, serp_node: str) -> None:
        """Extract ``q=`` from SERP URLs on known engine hosts."""
        url = flow.final
        if url.host not in self.search_hosts or url.path != "/search":
            return
        params = dict(parse_qsl(url.query))
        query = params.get("q", "").strip()
        if not query:
            return
        term_id = content_id("term", query.lower())
        if self.graph.get(term_id) is None:
            self.graph.add_node(
                ProvNode(
                    id=term_id,
                    kind=NodeKind.SEARCH_TERM,
                    timestamp_us=flow.timestamp_us,
                    label=query,
                    attrs={"engine": url.host, "vantage": "proxy"},
                )
            )
        if term_id != serp_node:
            self.graph.add_edge(
                EdgeKind.SEARCHED, term_id, serp_node,
                timestamp_us=flow.timestamp_us,
            )
