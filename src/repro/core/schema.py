"""SQL schema for the homogeneous provenance store (paper, section 4).

The paper's artifact is "a model browser provenance schema based on the
Firefox Places schema as a SQLite relational database" that "stores
heterogeneous provenance objects (such as pages and bookmarks) as
homogeneous graph nodes".  This schema realizes that design with the
same normalization discipline Places uses — which is what makes the
39.5%-overhead claim (E1) achievable:

* ``prov_pages`` plays the role of ``moz_places``: every URL and its
  title stored once.  Visit-instance nodes reference a page row rather
  than repeating strings (node versioning creates one node per visit;
  without this normalization the store would carry every URL dozens of
  times).
* ``prov_nodes`` is the single homogeneous node table: every object
  kind — visits, search terms, form submissions, bookmarks, downloads
  — lives here, distinguished only by an integer ``kind``.
* ``prov_edges`` is the single relationship table, referencing nodes
  by integer rowid (``nid``) to keep edge rows and their two indexes
  compact.
* attribute tables carry the semi-structured remainder; the common
  per-visit facts (``hidden``, ``transition``) are columns because
  they occur on nearly every row.
* ``prov_intervals`` records page-display intervals (the close events
  of section 3.2).

String node ids (``visit:000123``) remain the public API; ``nid`` is
internal to the store.
"""

from __future__ import annotations

from repro.core.taxonomy import EdgeKind, NodeKind

SCHEMA_VERSION = 4

#: Stable integer codes for node kinds (never reorder — on-disk data).
NODE_KIND_IDS: dict[NodeKind, int] = {
    NodeKind.PAGE: 1,
    NodeKind.PAGE_VISIT: 2,
    NodeKind.SEARCH_TERM: 3,
    NodeKind.FORM_SUBMISSION: 4,
    NodeKind.BOOKMARK: 5,
    NodeKind.DOWNLOAD: 6,
}
NODE_KINDS_BY_ID = {value: key for key, value in NODE_KIND_IDS.items()}

#: Stable integer codes for edge kinds.
EDGE_KIND_IDS: dict[EdgeKind, int] = {
    EdgeKind.LINK: 1,
    EdgeKind.REDIRECT: 2,
    EdgeKind.EMBED: 3,
    EdgeKind.TYPED_FROM: 4,
    EdgeKind.BOOKMARK_CLICK: 5,
    EdgeKind.BOOKMARKED: 6,
    EdgeKind.SEARCHED: 7,
    EdgeKind.FORM_FROM: 8,
    EdgeKind.FORM_GENERATED: 9,
    EdgeKind.DOWNLOADED: 10,
    EdgeKind.CO_OPEN: 11,
}
EDGE_KINDS_BY_ID = {value: key for key, value in EDGE_KIND_IDS.items()}

PROVENANCE_SCHEMA = """
CREATE TABLE prov_meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);

CREATE TABLE prov_pages (
    id INTEGER PRIMARY KEY,
    url TEXT UNIQUE NOT NULL,
    title TEXT NOT NULL DEFAULT ''
);

CREATE TABLE prov_nodes (
    nid INTEGER PRIMARY KEY,
    id TEXT UNIQUE NOT NULL,
    kind INTEGER NOT NULL,
    timestamp_us INTEGER NOT NULL,
    page_id INTEGER REFERENCES prov_pages (id),
    label TEXT,
    hidden INTEGER NOT NULL DEFAULT 0,
    transition INTEGER
);
CREATE INDEX prov_nodes_kind ON prov_nodes (kind);
CREATE INDEX prov_nodes_page ON prov_nodes (page_id) WHERE page_id IS NOT NULL;
CREATE INDEX prov_nodes_time ON prov_nodes (timestamp_us);

CREATE TABLE prov_edges (
    id INTEGER PRIMARY KEY,
    kind INTEGER NOT NULL,
    src INTEGER NOT NULL REFERENCES prov_nodes (nid),
    dst INTEGER NOT NULL REFERENCES prov_nodes (nid),
    -- NULL means "same as the destination node's timestamp", which is
    -- true of almost every captured edge (the event that created the
    -- edge created the destination).  Inheritance halves edge row
    -- width, one of Chapman et al.'s tricks applied in-schema.
    timestamp_us INTEGER
);
CREATE INDEX prov_edges_src ON prov_edges (src);
CREATE INDEX prov_edges_dst ON prov_edges (dst);

CREATE TABLE prov_node_attrs (
    nid INTEGER NOT NULL REFERENCES prov_nodes (nid),
    name TEXT NOT NULL,
    value,
    PRIMARY KEY (nid, name)
);

CREATE TABLE prov_edge_attrs (
    edge_id INTEGER NOT NULL REFERENCES prov_edges (id),
    name TEXT NOT NULL,
    value,
    PRIMARY KEY (edge_id, name)
);

CREATE TABLE prov_intervals (
    nid INTEGER NOT NULL REFERENCES prov_nodes (nid),
    tab_id INTEGER NOT NULL,
    opened_us INTEGER NOT NULL,
    closed_us INTEGER NOT NULL
);
CREATE INDEX prov_intervals_open ON prov_intervals (opened_us, closed_us);
-- A display interval is identified by what was shown and when it was
-- opened; capture emits each at most once, so a duplicate key can only
-- be a re-delivery (journal crash replay in the commit-vs-checkpoint
-- window).  The unique index turns those into upserts — exactly-once.
CREATE UNIQUE INDEX prov_intervals_identity ON prov_intervals (nid, opened_us);
"""

#: The relevance-search sidecar (v4): a per-shard inverted index over
#: node text (label + URL tokens), maintained incrementally inside the
#: same transaction as the rows it indexes.  ``prov_terms`` interns
#: terms once; ``prov_postings`` is the (term, document) matrix with
#: raw term frequencies; ``prov_index_docs`` keeps per-document token
#: counts for BM25 length normalization.  Document frequencies are
#: *not* stored — a query loads each query term's posting list anyway,
#: so df is its length, which keeps every index write idempotent under
#: journal crash replay (no counters to double-increment).  Corpus
#: aggregates (document count, total length) live in ``prov_meta`` and
#: are maintained as deltas computed against the rows in the same
#: transaction, which makes re-applying a committed batch a no-op.
SEARCH_INDEX_SCHEMA = """
CREATE TABLE IF NOT EXISTS prov_terms (
    tid INTEGER PRIMARY KEY,
    term TEXT UNIQUE NOT NULL
);

CREATE TABLE IF NOT EXISTS prov_postings (
    tid INTEGER NOT NULL REFERENCES prov_terms (tid),
    nid INTEGER NOT NULL REFERENCES prov_nodes (nid),
    tf INTEGER NOT NULL,
    PRIMARY KEY (tid, nid)
) WITHOUT ROWID;
CREATE INDEX IF NOT EXISTS prov_postings_doc ON prov_postings (nid);

CREATE TABLE IF NOT EXISTS prov_index_docs (
    nid INTEGER PRIMARY KEY REFERENCES prov_nodes (nid),
    length INTEGER NOT NULL
);
"""

PROVENANCE_SCHEMA = PROVENANCE_SCHEMA + SEARCH_INDEX_SCHEMA

#: Recursive-CTE ancestor walk over integer nids; depth-bounded so
#: cyclic inputs (edge-versioned graphs) terminate; UNION deduplicates.
ANCESTOR_QUERY = """
WITH RECURSIVE start (nid) AS (
    SELECT nid FROM prov_nodes WHERE id = :start
),
walk (nid, depth) AS (
    SELECT nid, 0 FROM start
    UNION
    SELECT e.src, walk.depth + 1
    FROM prov_edges AS e
    JOIN walk ON e.dst = walk.nid
    WHERE walk.depth < :max_depth
      AND (:kinds_csv = '' OR instr(:kinds_csv, ',' || e.kind || ',') > 0)
)
SELECT n.id, MIN(walk.depth) AS depth
FROM walk
JOIN prov_nodes AS n ON n.nid = walk.nid
WHERE walk.nid != (SELECT nid FROM start)
GROUP BY n.id
ORDER BY depth, n.id
"""

DESCENDANT_QUERY = """
WITH RECURSIVE start (nid) AS (
    SELECT nid FROM prov_nodes WHERE id = :start
),
walk (nid, depth) AS (
    SELECT nid, 0 FROM start
    UNION
    SELECT e.dst, walk.depth + 1
    FROM prov_edges AS e
    JOIN walk ON e.src = walk.nid
    WHERE walk.depth < :max_depth
      AND (:kinds_csv = '' OR instr(:kinds_csv, ',' || e.kind || ',') > 0)
)
SELECT n.id, MIN(walk.depth) AS depth
FROM walk
JOIN prov_nodes AS n ON n.nid = walk.nid
WHERE walk.nid != (SELECT nid FROM start)
GROUP BY n.id
ORDER BY depth, n.id
"""
