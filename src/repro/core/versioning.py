"""Cycle-breaking versioning policies (paper, section 3.1).

Pages and links on the web are cyclic; provenance must be acyclic.  The
paper discusses two resolutions and we implement both:

* :class:`NodeVersioningPolicy` — "each version creates a new instance
  of an object": every navigation mints a fresh ``PAGE_VISIT`` node, as
  in the PASS prototype.  The graph is a DAG by construction (edges run
  forward in time).  Cost: many nodes per page, and "queries over all
  the objects that describe a given page" need the URL index.

* :class:`EdgeVersioningPolicy` — one ``PAGE`` node per URL; each
  traversal adds a timestamped edge, "creating a traversal order among
  edges".  The stored graph may be cyclic, but *temporal* traversal —
  only crossing edges no later than the time bound established by the
  path so far — is acyclic in effect.  Cost: time-respecting queries
  are more complex; benefit: far fewer nodes.

The ablation experiment E10 runs the same workload under both policies
and compares store size and query cost, quantifying the trade-off the
paper describes qualitatively.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.core.graph import ProvenanceGraph
from repro.core.model import ProvNode
from repro.core.taxonomy import EdgeKind, NodeKind
from repro.errors import UnknownNodeError
from repro.ids import IdAllocator, content_id


class NodeVersioningPolicy:
    """New ``PAGE_VISIT`` instance per navigation (the default)."""

    name = "node-versioning"
    enforce_dag = True

    def __init__(self) -> None:
        self._alloc = IdAllocator()

    def visit_node(
        self, url: str, title: str, when_us: int, **attrs: str | int | float
    ) -> ProvNode:
        """Mint the node for one page visit."""
        return ProvNode(
            id=self._alloc.next("visit"),
            kind=NodeKind.PAGE_VISIT,
            timestamp_us=when_us,
            label=title,
            url=url,
            attrs=attrs,
        )

    def resolve_visit(self, graph: ProvenanceGraph, node: ProvNode) -> ProvNode:
        """Insert the freshly minted visit node (always new)."""
        return graph.add_node(node)


class EdgeVersioningPolicy:
    """One ``PAGE`` node per URL; traversal order lives on edges."""

    name = "edge-versioning"
    enforce_dag = False

    def visit_node(
        self, url: str, title: str, when_us: int, **attrs: str | int | float
    ) -> ProvNode:
        """Mint (or re-mint) the page node for *url*.

        Deterministic id: revisits produce an equal node, which
        :meth:`resolve_visit` deduplicates.  The node's timestamp is
        the *first* visit time; later visits exist only as edges.
        """
        return ProvNode(
            id=content_id("page", url),
            kind=NodeKind.PAGE,
            timestamp_us=when_us,
            label=title,
            url=url,
            attrs=attrs,
        )

    def resolve_visit(self, graph: ProvenanceGraph, node: ProvNode) -> ProvNode:
        existing = graph.get(node.id)
        if existing is not None:
            return existing
        return graph.add_node(node)


VersioningPolicy = NodeVersioningPolicy | EdgeVersioningPolicy


# ---------------------------------------------------------------------------
# Temporal traversal (the query side of edge versioning)
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TemporalReach:
    """One node reached by a time-respecting walk."""

    node_id: str
    depth: int
    #: The latest time bound under which the node was reachable.
    bound_us: int


def temporal_ancestors(
    graph: ProvenanceGraph,
    start: str,
    *,
    at_us: int,
    kinds: frozenset[EdgeKind] | None = None,
    max_depth: int | None = None,
) -> dict[str, TemporalReach]:
    """Ancestors of *start* respecting edge-timestamp order.

    A backward step across an edge is allowed only if the edge's
    timestamp is at or before the bound established by the path so far
    (initially *at_us*); the crossed edge's timestamp becomes the new
    bound.  This is exactly the "traversal order among edges" cycle
    break: a cyclic page graph yields acyclic time-respecting paths.

    Each node is reported once with the *maximum* bound at which it was
    reached (later bounds dominate: any edge crossable under an earlier
    bound is crossable under a later one).
    """
    if start not in graph:
        raise UnknownNodeError(start)
    best: dict[str, TemporalReach] = {}
    queue: deque[tuple[str, int, int]] = deque([(start, at_us, 0)])
    best_bound: dict[str, int] = {start: at_us}
    while queue:
        current, bound, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for edge in graph.in_edges(current, kinds):
            if edge.timestamp_us > bound:
                continue
            previous = best_bound.get(edge.src)
            if previous is not None and previous >= edge.timestamp_us:
                continue
            best_bound[edge.src] = edge.timestamp_us
            reach = TemporalReach(
                node_id=edge.src, depth=depth + 1, bound_us=edge.timestamp_us
            )
            existing = best.get(edge.src)
            if existing is None or existing.bound_us < reach.bound_us:
                best[edge.src] = reach
            queue.append((edge.src, edge.timestamp_us, depth + 1))
    return best


def temporal_descendants(
    graph: ProvenanceGraph,
    start: str,
    *,
    from_us: int = 0,
    kinds: frozenset[EdgeKind] | None = None,
    max_depth: int | None = None,
) -> dict[str, TemporalReach]:
    """Descendants of *start* along non-decreasing edge timestamps.

    The forward dual of :func:`temporal_ancestors`: each step's edge
    must be at or after the bound established so far, so influence only
    flows forward in time.
    """
    if start not in graph:
        raise UnknownNodeError(start)
    best: dict[str, TemporalReach] = {}
    best_bound: dict[str, int] = {start: from_us}
    queue: deque[tuple[str, int, int]] = deque([(start, from_us, 0)])
    while queue:
        current, bound, depth = queue.popleft()
        if max_depth is not None and depth >= max_depth:
            continue
        for edge in graph.out_edges(current, kinds):
            if edge.timestamp_us < bound:
                continue
            previous = best_bound.get(edge.dst)
            if previous is not None and previous <= edge.timestamp_us:
                continue
            best_bound[edge.dst] = edge.timestamp_us
            reach = TemporalReach(
                node_id=edge.dst, depth=depth + 1, bound_us=edge.timestamp_us
            )
            existing = best.get(edge.dst)
            if existing is None or existing.bound_us > reach.bound_us:
                best[edge.dst] = reach
            queue.append((edge.dst, edge.timestamp_us, depth + 1))
    return best


def version_chain(graph: ProvenanceGraph, url: str) -> list[ProvNode]:
    """All node instances recorded for *url*, oldest first.

    Under node versioning this is the page's visit history; under edge
    versioning it has at most one element.  This is the query the paper
    notes instance-versioned stores make "more difficult" — the URL
    index makes it O(instances).
    """
    nodes = [graph.node(node_id) for node_id in graph.nodes_for_url(url)]
    nodes.sort(key=lambda node: (node.timestamp_us, node.id))
    return nodes
