"""The SQLite-backed homogeneous provenance store.

Persists a :class:`~repro.core.graph.ProvenanceGraph` (plus display
intervals) in the Places-derived schema of :mod:`repro.core.schema`,
and answers the paper's queries *in SQL* — ancestors and descendants
run as recursive CTEs inside SQLite, exactly the kind of local
computation whose feasibility the paper set out to demonstrate.  The
latency experiment (E4) times these SQL paths; the in-memory query
engine (:mod:`repro.core.query`) is the optimized alternative measured
alongside.

The store normalizes like Places: URLs and titles live once in
``prov_pages``; visit-instance nodes reference them.  Node string ids
remain the public interface — integer rowids are internal.

Supports bulk persistence (:meth:`save_graph`), write-through capture
(:meth:`append_node` / :meth:`append_edge`), and lossless round-trips
(:meth:`load_graph`).
"""

from __future__ import annotations

import os
import sqlite3
import threading
from collections import Counter
from collections.abc import Iterable
from contextlib import contextmanager

from repro.browser.transitions import TransitionType
from repro.core.capture import NodeInterval
from repro.core.graph import ProvenanceGraph
from repro.core.model import AttrValue, ProvEdge, ProvNode
from repro.core.schema import (
    ANCESTOR_QUERY,
    DESCENDANT_QUERY,
    EDGE_KIND_IDS,
    EDGE_KINDS_BY_ID,
    NODE_KIND_IDS,
    NODE_KINDS_BY_ID,
    PROVENANCE_SCHEMA,
    SCHEMA_VERSION,
    SEARCH_INDEX_SCHEMA,
)
from repro.core.taxonomy import EdgeKind, NodeKind
from repro.errors import (
    SchemaVersionError,
    StoreAffinityError,
    StoreClosedError,
    UnknownNodeError,
)

_TRANSITION_NAMES = {t.name.lower(): t.value for t in TransitionType}
_TRANSITION_BY_VALUE = {t.value: t.name.lower() for t in TransitionType}

#: Keep ``IN (...)`` parameter lists under SQLite's default 999 limit.
_SQL_CHUNK = 400


def _chunked(items: list, size: int = _SQL_CHUNK):
    for start in range(0, len(items), size):
        yield items[start:start + size]


def _like_escape(text: str) -> str:
    r"""Escape LIKE metacharacters so *text* matches itself literally.

    Pairs with ``ESCAPE '\'`` in the query; without it a ``%`` or ``_``
    in a user-supplied value acts as a wildcard.
    """
    return text.replace("\\", "\\\\").replace("%", "\\%").replace("_", "\\_")


def _like_prefix(prefix: str) -> str:
    """A LIKE pattern matching ids starting with *prefix* literally."""
    return _like_escape(prefix) + "%"


def _like_substring(term: str) -> str:
    """A LIKE pattern matching *term* as a literal substring."""
    return "%" + _like_escape(term) + "%"


#: ``RETURNING`` needs SQLite >= 3.35 (2021-03); older builds take the
#: select-back path in :meth:`ProvenanceStore.append_node`.
_HAS_RETURNING = sqlite3.sqlite_version_info >= (3, 35, 0)

#: Node upsert that KEEPS the existing rowid on id collisions.  ``INSERT
#: OR REPLACE`` would delete + re-insert under a fresh nid, silently
#: severing every committed edge and interval referencing the old one —
#: re-recording a node (idempotent capture, service replay) must never
#: do that.
_NODE_UPSERT = (
    "INSERT INTO prov_nodes"
    " (id, kind, timestamp_us, page_id, label, hidden, transition)"
    " VALUES (?, ?, ?, ?, ?, ?, ?)"
    " ON CONFLICT(id) DO UPDATE SET"
    " kind=excluded.kind, timestamp_us=excluded.timestamp_us,"
    " page_id=excluded.page_id, label=excluded.label,"
    " hidden=excluded.hidden, transition=excluded.transition"
)


class ProvenanceStore:
    """SQLite persistence and SQL query layer for provenance graphs."""

    def __init__(self, path: str = ":memory:", *, metrics: object = None) -> None:
        self.path = path
        # check_same_thread=False: a store may be opened by one thread
        # (lazily, via the service's StorePool) and then owned by a
        # per-shard flush worker.  Cross-thread discipline is enforced
        # by this class instead — see :meth:`exclusive` and ``conn``.
        self._conn: sqlite3.Connection | None = sqlite3.connect(
            path, check_same_thread=False
        )
        self._lock = threading.RLock()
        #: The process that opened this store owns its connections.  A
        #: SQLite handle carried across ``fork`` shares file locks and
        #: statement state with the parent — using it from the child is
        #: undefined behavior, so it must fail loudly instead.  Shard
        #: worker *processes* (spawned, not forked) each open their own
        #: store on the shard path; this guard is what keeps a
        #: misrouted handle from silently corrupting a shard.
        self._pid = os.getpid()
        #: Thread ident currently holding the store via :meth:`exclusive`.
        self._owner: int | None = None
        #: Per-thread read-only connections for disk stores (WAL reads).
        #: Guarded by its own lock: readers must be able to register
        #: while a writer holds the main lock via :meth:`exclusive` —
        #: not blocking on the writer is their entire point.
        self._read_conns: dict[int, sqlite3.Connection] = {}
        self._read_lock = threading.Lock()
        self._nids: dict[str, int] = {}
        self._node_ts: dict[str, int] = {}
        self._pages: dict[str, tuple[int, str]] = {}  # url -> (page_id, title)
        self._tids: dict[str, int] = {}  # interned term -> tid
        #: Per-call counters for the ranked-search read helpers, keyed
        #: by method name.  The paged-search bench (and its acceptance
        #: check) reads these to prove that serving page N+1 issues a
        #: per-shard *continuation* — snippet fetches only — rather
        #: than re-running the scoring SELECTs of a full re-rank.
        #: Observability only: never read on a hot path, never reset by
        #: the store itself.
        self.read_ops: Counter = Counter()
        #: Optional service-layer metrics sink (duck-typed: anything
        #: with ``.counter(name, label_name=...)`` — the core layer
        #: must not import the service package).  When present, read
        #: ops also land in the shared registry as
        #: ``store.read_ops{op=...}``; the local Counter above remains
        #: the stable per-store view tests and benches assert on.
        self._read_ops_metric = (
            metrics.counter("store.read_ops", label_name="op")  # type: ignore[attr-defined]
            if metrics is not None
            else None
        )
        if path != ":memory:":
            # Pragmatic durability/throughput trade for on-disk stores:
            # WAL lets readers overlap the writer, NORMAL fsyncs only at
            # checkpoints.  :memory: databases ignore both, so they are
            # set only for real files to keep test behavior identical.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
        existing = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='prov_meta'"
        ).fetchone()
        if existing is None:
            self._conn.executescript(PROVENANCE_SCHEMA)
            self._conn.execute(
                "INSERT INTO prov_meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        else:
            found = int(
                self._conn.execute(
                    "SELECT value FROM prov_meta WHERE key = 'schema_version'"
                ).fetchone()[0]
            )
            if found == 2:
                self._migrate_v2_to_v3()
                found = 3
            if found == 3:
                self._migrate_v3_to_v4()
                found = SCHEMA_VERSION
            if found != SCHEMA_VERSION:
                self._conn.close()
                self._conn = None
                raise SchemaVersionError(found, SCHEMA_VERSION)

    def _migrate_v2_to_v3(self) -> None:
        """In-place v2 -> v3 upgrade: the interval identity index.

        v3's only delta is ``UNIQUE (nid, opened_us)`` on
        ``prov_intervals``.  Rows a pre-v3 crash replay already
        duplicated are collapsed first (they are exact re-deliveries,
        so keeping the first of each group loses nothing), then the
        index lands and the version advances — existing stores keep
        opening instead of raising :class:`SchemaVersionError`.
        """
        self._conn.execute(
            "DELETE FROM prov_intervals WHERE rowid NOT IN"
            " (SELECT MIN(rowid) FROM prov_intervals"
            "  GROUP BY nid, opened_us)"
        )
        self._conn.execute(
            "CREATE UNIQUE INDEX IF NOT EXISTS prov_intervals_identity"
            " ON prov_intervals (nid, opened_us)"
        )
        self._conn.execute(
            "UPDATE prov_meta SET value = '3' WHERE key = 'schema_version'"
        )
        self._conn.commit()

    def _migrate_v3_to_v4(self) -> None:
        """In-place v3 -> v4 upgrade: the relevance-index sidecar.

        The index tables land empty and the index is marked *stale*:
        existing nodes are unindexed, and re-deriving their token bags
        belongs to the indexing layer (``repro.service.indexer``), not
        the store.  A stale index is rebuilt lazily on the first ranked
        query, so migrated stores keep opening — and keep answering
        every pre-v4 query — without paying a rebuild they may never
        need.
        """
        self._conn.executescript(SEARCH_INDEX_SCHEMA)
        self._conn.execute(
            "INSERT OR REPLACE INTO prov_meta (key, value)"
            " VALUES ('index_state', 'stale')"
        )
        self._conn.execute(
            "UPDATE prov_meta SET value = ? WHERE key = 'schema_version'",
            (str(SCHEMA_VERSION),),
        )
        self._conn.commit()

    # -- lifecycle --------------------------------------------------------------

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreClosedError("provenance store is closed")
        if os.getpid() != self._pid:
            raise StoreAffinityError(
                f"store {self.path!r} was opened in process {self._pid}"
                f" and used from process {os.getpid()}; SQLite handles"
                f" do not survive fork — open a fresh store on the path"
            )
        owner = self._owner
        if owner is not None and owner != threading.get_ident():
            raise StoreAffinityError(
                f"store {self.path!r} is exclusively owned by thread"
                f" {owner}; statements from other threads would"
                f" interleave into its open transaction"
            )
        return self._conn

    @contextmanager
    def exclusive(self):
        """Hold the store for the calling thread (flush-worker affinity).

        While held, every other thread's access through ``conn`` raises
        :class:`~repro.errors.StoreAffinityError` instead of silently
        racing the owner's transaction; read-only query paths sidestep
        the guard through per-thread WAL connections
        (:meth:`read_connection`).  Reentrant within a thread.
        """
        with self._lock:
            previous = self._owner
            self._owner = threading.get_ident()
            try:
                yield self
            finally:
                self._owner = previous

    def read_connection(self) -> sqlite3.Connection:
        """A per-thread connection for read-only SQL on disk stores.

        WAL mode lets these readers run concurrently with the writer
        connection (they see the last committed snapshot).  ``:memory:``
        databases are private to their connection, so they fall back to
        the main connection — callers serialize via :meth:`exclusive`.
        """
        if self._conn is None:
            raise StoreClosedError("provenance store is closed")
        if os.getpid() != self._pid:
            raise StoreAffinityError(
                f"store {self.path!r} was opened in process {self._pid};"
                f" a forked child must open its own store on the path"
            )
        if self.path == ":memory:":
            return self.conn
        ident = threading.get_ident()
        with self._read_lock:
            cached = self._read_conns.get(ident)
        if cached is None:
            cached = sqlite3.connect(self.path, check_same_thread=False)
            cached.execute("PRAGMA query_only=ON")
            with self._read_lock:
                if self._conn is None:  # closed while we were connecting
                    cached.close()
                    raise StoreClosedError("provenance store is closed")
                self._read_conns[ident] = cached
        return cached

    @contextmanager
    def _read_context(self):
        """Yield a connection suitable for read-only SQL from any thread.

        Unowned (or owner-thread) access reads the main connection under
        the store lock; access from a non-owner thread while a writer
        holds the store takes a per-thread WAL read connection instead
        of blocking on (or racing) the writer.
        """
        owner = self._owner
        if (
            self.path != ":memory:"
            and owner is not None
            and owner != threading.get_ident()
        ):
            yield self.read_connection()
            return
        with self.exclusive():  # takes the store lock
            yield self.conn

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                self._conn.commit()
                self._conn.close()
                self._conn = None
        with self._read_lock:
            for reader in self._read_conns.values():
                reader.close()
            self._read_conns.clear()

    def commit(self) -> None:
        self.conn.commit()

    def rollback(self) -> None:
        """Abandon the open transaction and drop in-memory caches.

        The page/rowid/timestamp caches may reference rows the rollback
        just erased; clearing them (they repopulate lazily) keeps a
        retried batch from writing dangling foreign keys.
        """
        self.conn.rollback()
        self.drop_row_caches()

    def drop_row_caches(self) -> None:
        """Forget the interned-row caches; they repopulate lazily.

        Needed whenever rows may have vanished underneath this
        instance: after a rollback (which erases rows the caches point
        at), and — the cross-process case — in a worker process whose
        shard the parent just ran retention surgery on.  A stale
        ``id -> nid`` or ``url -> page_id`` entry would let the next
        batch write edges or nodes against deleted rowids.
        """
        self._nids.clear()
        self._node_ts.clear()
        self._pages.clear()
        self._tids.clear()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ------------------------------------------------------------------

    def append_node(self, node: ProvNode) -> None:
        """Insert one node (id collisions replace, for idempotence).

        The write-through capture path: one probe for unseen ids, then
        the upsert (with ``RETURNING nid`` where SQLite supports it).
        """
        if node.id not in self._nids:
            # Could be a cold-cache re-record; learn its nid/timestamp
            # so an edge-timestamp fix-up below can see the old value.
            self._prefetch_nids([node.id])
        old_ts = self._node_ts.get(node.id)
        if node.id in self._nids and old_ts != node.timestamp_us:
            self._materialize_inherited_ts([(old_ts, self._nids[node.id])])

        page_id = None
        stored_label: str | None = node.label
        if node.url is not None:
            page_id, page_title = self._intern_pages(
                {node.url: node.label}
            )[node.url]
            if node.label == page_title:
                stored_label = None  # inherit from the page row

        attrs = dict(node.attrs)
        hidden = 1 if attrs.pop("hidden", 0) == 1 else 0
        transition = attrs.pop("transition", None)
        transition_id = None
        if isinstance(transition, str) and transition in _TRANSITION_NAMES:
            transition_id = _TRANSITION_NAMES[transition]
        elif transition is not None:
            attrs["transition"] = transition  # unknown value: keep generic

        row = (
            node.id,
            NODE_KIND_IDS[node.kind],
            node.timestamp_us,
            page_id,
            stored_label,
            hidden,
            transition_id,
        )
        if _HAS_RETURNING:
            cursor = self.conn.execute(_NODE_UPSERT + " RETURNING nid", row)
            nid = cursor.fetchone()[0]
            self._nids[node.id] = nid
        else:
            self.conn.execute(_NODE_UPSERT, row)
            nid = self._nids.get(node.id)  # upsert keeps existing rowids
            if nid is None:
                self._prefetch_nids([node.id])
                nid = self._nids[node.id]
        self._node_ts[node.id] = node.timestamp_us
        # Last write owns the row outright: clear any previous attrs.
        self.conn.execute("DELETE FROM prov_node_attrs WHERE nid = ?", (nid,))
        if attrs:
            self.conn.executemany(
                "INSERT OR REPLACE INTO prov_node_attrs (nid, name, value)"
                " VALUES (?, ?, ?)",
                [(nid, name, value) for name, value in attrs.items()],
            )

    def append_nodes(self, nodes: Iterable[ProvNode]) -> int:
        """Bulk-insert nodes with ``executemany``; returns rows written.

        Semantics match repeated :meth:`append_node` (page interning,
        label inheritance, hidden/transition promotion, id collisions
        replace) but pages are interned in one batch and node plus attr
        rows land via two ``executemany`` calls instead of per-row
        round-trips — the bulk path :meth:`save_graph` and the service
        ingest pipeline ride on.
        """
        nodes = list(nodes)
        if not nodes:
            return 0
        first_titles: dict[str, str] = {}
        for node in nodes:
            if node.url is not None and node.url not in first_titles:
                first_titles[node.url] = node.label
        pages = self._intern_pages(first_titles)
        # Sequential append_node gives the last write for an id the
        # whole row, attrs included; dedupe last-wins so a batch does
        # not merge a superseded node's attrs into its replacement.
        # (Pages were interned first-sight above, as sequence order
        # would have.)
        if len({node.id for node in nodes}) != len(nodes):
            nodes = list({node.id: node for node in nodes}.values())
        # Warm the caches for rows that already exist, then pin down
        # edges that inherit (NULL-store) a timestamp we are about to
        # change — otherwise re-recording a node with a corrected
        # timestamp would retroactively shift its inbound edges' times.
        self._prefetch_nids(
            [node.id for node in nodes if node.id not in self._nids]
        )
        self._materialize_inherited_ts(
            [
                (self._node_ts[node.id], self._nids[node.id])
                for node in nodes
                if node.id in self._nids
                and self._node_ts[node.id] != node.timestamp_us
            ]
        )

        rows: list[tuple] = []
        pending_attrs: list[tuple[str, dict[str, AttrValue]]] = []
        for node in nodes:
            page_id = None
            stored_label: str | None = node.label
            if node.url is not None:
                page_id, page_title = pages[node.url]
                if node.label == page_title:
                    stored_label = None  # inherit from the page row

            attrs = dict(node.attrs)
            hidden = 1 if attrs.pop("hidden", 0) == 1 else 0
            transition = attrs.pop("transition", None)
            transition_id = None
            if isinstance(transition, str) and transition in _TRANSITION_NAMES:
                transition_id = _TRANSITION_NAMES[transition]
            elif transition is not None:
                attrs["transition"] = transition  # unknown value: keep generic

            rows.append(
                (
                    node.id,
                    NODE_KIND_IDS[node.kind],
                    node.timestamp_us,
                    page_id,
                    stored_label,
                    hidden,
                    transition_id,
                )
            )
            self._node_ts[node.id] = node.timestamp_us
            if attrs:
                pending_attrs.append((node.id, attrs))

        self.conn.executemany(_NODE_UPSERT, rows)
        self._prefetch_nids(
            [node.id for node in nodes if node.id not in self._nids]
        )  # only genuinely-new rows left to fetch
        # Last write owns each row outright: clear any previous attrs
        # (no-op for fresh nodes) before inserting the new set.
        self.conn.executemany(
            "DELETE FROM prov_node_attrs WHERE nid = ?",
            [(self._nids[node.id],) for node in nodes],
        )
        if pending_attrs:
            self.conn.executemany(
                "INSERT OR REPLACE INTO prov_node_attrs (nid, name, value)"
                " VALUES (?, ?, ?)",
                [
                    (self._nids[node_id], name, value)
                    for node_id, attrs in pending_attrs
                    for name, value in attrs.items()
                ],
            )
        return len(rows)

    def append_edge(self, edge: ProvEdge) -> None:
        self.append_edges((edge,))

    def append_edges(self, edges: Iterable[ProvEdge]) -> int:
        """Bulk-insert edges with ``executemany``; returns rows written."""
        edges = list(edges)
        if not edges:
            return 0
        # Same re-insert discipline as nodes: the last write for an
        # edge id owns the row and its attrs outright.
        if len({edge.id for edge in edges}) != len(edges):
            edges = list({edge.id: edge for edge in edges}.values())
        endpoints = {edge.src for edge in edges} | {edge.dst for edge in edges}
        self._prefetch_nids([i for i in endpoints if i not in self._nids])

        rows: list[tuple] = []
        attr_rows: list[tuple] = []
        for edge in edges:
            stored_ts: int | None = edge.timestamp_us
            if self._dst_timestamp(edge.dst) == edge.timestamp_us:
                stored_ts = None  # inherit from the destination node
            rows.append(
                (
                    edge.id,
                    EDGE_KIND_IDS[edge.kind],
                    self._nid(edge.src),
                    self._nid(edge.dst),
                    stored_ts,
                )
            )
            attr_rows.extend(
                (edge.id, name, value) for name, value in edge.attrs.items()
            )
        self.conn.executemany(
            "INSERT OR REPLACE INTO prov_edges (id, kind, src, dst, timestamp_us)"
            " VALUES (?, ?, ?, ?, ?)",
            rows,
        )
        self.conn.executemany(
            "DELETE FROM prov_edge_attrs WHERE edge_id = ?",
            [(edge.id,) for edge in edges],
        )
        if attr_rows:
            self.conn.executemany(
                "INSERT OR REPLACE INTO prov_edge_attrs (edge_id, name, value)"
                " VALUES (?, ?, ?)",
                attr_rows,
            )
        return len(rows)

    def append_interval(self, interval: NodeInterval) -> None:
        self.append_intervals((interval,))

    def append_intervals(self, intervals: Iterable[NodeInterval]) -> int:
        """Bulk-insert display intervals; returns rows written.

        Upserts on ``(nid, opened_us)``: capture emits each interval at
        most once, so a duplicate key is a re-delivery (journal crash
        replay between a shard commit and the checkpoint write) and
        must update the existing row instead of duplicating it —
        exactly-once interval replay.
        """
        intervals = list(intervals)
        if not intervals:
            return 0
        self._prefetch_nids(
            [i.node_id for i in intervals if i.node_id not in self._nids]
        )
        self.conn.executemany(
            "INSERT INTO prov_intervals (nid, tab_id, opened_us, closed_us)"
            " VALUES (?, ?, ?, ?)"
            " ON CONFLICT(nid, opened_us) DO UPDATE SET"
            " tab_id=excluded.tab_id, closed_us=excluded.closed_us",
            [
                (
                    self._nid(interval.node_id),
                    interval.tab_id,
                    interval.opened_us,
                    interval.closed_us,
                )
                for interval in intervals
            ],
        )
        return len(intervals)

    def save_graph(
        self,
        graph: ProvenanceGraph,
        intervals: Iterable[NodeInterval] = (),
    ) -> None:
        """Bulk-persist *graph* (and optional intervals), then commit.

        All rows land in one transaction via the batched append paths.
        """
        self.append_nodes(graph.nodes())
        self.append_edges(graph.edges())
        self.append_intervals(intervals)
        self.commit()

    # -- loading --------------------------------------------------------------------

    def load_graph(self, *, enforce_dag: bool = True) -> ProvenanceGraph:
        """Reconstruct the full graph from the store."""
        graph = ProvenanceGraph(enforce_dag=enforce_dag)
        pages: dict[int, tuple[str, str]] = {
            row[0]: (row[1], row[2])
            for row in self.conn.execute("SELECT id, url, title FROM prov_pages")
        }
        node_attrs: dict[int, dict[str, AttrValue]] = {}
        for nid, name, value in self.conn.execute(
            "SELECT nid, name, value FROM prov_node_attrs"
        ):
            node_attrs.setdefault(nid, {})[name] = value

        id_by_nid: dict[int, str] = {}
        for nid, node_id, kind, when, page_id, label, hidden, transition in (
            self.conn.execute(
                "SELECT nid, id, kind, timestamp_us, page_id, label, hidden,"
                " transition FROM prov_nodes ORDER BY timestamp_us, nid"
            )
        ):
            url = None
            if page_id is not None:
                url, page_title = pages[page_id]
                if label is None:
                    label = page_title
            attrs = node_attrs.get(nid, {})
            if hidden:
                attrs["hidden"] = 1
            if transition is not None:
                attrs["transition"] = _TRANSITION_BY_VALUE[transition]
            graph.add_node(
                ProvNode(
                    id=node_id,
                    kind=NODE_KINDS_BY_ID[kind],
                    timestamp_us=when,
                    label=label or "",
                    url=url,
                    attrs=attrs,
                )
            )
            id_by_nid[nid] = node_id
            self._nids[node_id] = nid
            self._node_ts[node_id] = when

        edge_attrs: dict[int, dict[str, AttrValue]] = {}
        for edge_id, name, value in self.conn.execute(
            "SELECT edge_id, name, value FROM prov_edge_attrs"
        ):
            edge_attrs.setdefault(edge_id, {})[name] = value
        for edge_id, kind, src, dst, when in self.conn.execute(
            "SELECT id, kind, src, dst, timestamp_us FROM prov_edges ORDER BY id"
        ):
            dst_id = id_by_nid[dst]
            if when is None:
                when = graph.node(dst_id).timestamp_us
            graph.add_edge(
                EDGE_KINDS_BY_ID[kind],
                id_by_nid[src],
                dst_id,
                timestamp_us=when,
                attrs=edge_attrs.get(edge_id, {}),
            )
        return graph

    def load_intervals(self) -> list[NodeInterval]:
        rows = self.conn.execute(
            "SELECT n.id, i.tab_id, i.opened_us, i.closed_us"
            " FROM prov_intervals AS i JOIN prov_nodes AS n ON n.nid = i.nid"
            " ORDER BY i.opened_us"
        )
        return [
            NodeInterval(node_id=row[0], tab_id=row[1], opened_us=row[2],
                         closed_us=row[3])
            for row in rows
        ]

    # -- SQL queries (the paper's implementation path) ----------------------------------

    def sql_ancestors(
        self,
        node_id: str,
        *,
        max_depth: int = 100,
        kinds: Iterable[EdgeKind] | None = None,
    ) -> list[tuple[str, int]]:
        """Ancestors via recursive CTE; [(node_id, depth)] nearest-first."""
        with self._read_context() as conn:
            self._require_node(node_id, conn)
            return self._walk(conn, ANCESTOR_QUERY, node_id, max_depth, kinds)

    def sql_descendants(
        self,
        node_id: str,
        *,
        max_depth: int = 100,
        kinds: Iterable[EdgeKind] | None = None,
    ) -> list[tuple[str, int]]:
        """Descendants via recursive CTE; [(node_id, depth)] nearest-first."""
        with self._read_context() as conn:
            self._require_node(node_id, conn)
            return self._walk(conn, DESCENDANT_QUERY, node_id, max_depth,
                              kinds)

    def sql_nodes_in_window(
        self, start_us: int, end_us: int, *, kind: NodeKind | None = None
    ) -> list[str]:
        """Node ids with timestamps in [start_us, end_us)."""
        with self._read_context() as conn:
            if kind is None:
                rows = conn.execute(
                    "SELECT id FROM prov_nodes"
                    " WHERE timestamp_us >= ? AND timestamp_us < ?"
                    " ORDER BY timestamp_us, id",
                    (start_us, end_us),
                )
            else:
                rows = conn.execute(
                    "SELECT id FROM prov_nodes"
                    " WHERE timestamp_us >= ? AND timestamp_us < ? AND kind = ?"
                    " ORDER BY timestamp_us, id",
                    (start_us, end_us, NODE_KIND_IDS[kind]),
                )
            return [row[0] for row in rows]

    def sql_text_search(
        self, term: str, *, limit: int = 50, id_prefix: str | None = None
    ) -> list[str]:
        """Substring search over labels, page titles, and URLs.

        ``id_prefix`` restricts hits to nodes whose string id starts
        with the prefix — the multi-tenant service namespaces each
        user's nodes with an id prefix and uses this to keep one user's
        search from surfacing another's history.
        """
        return [
            node_id
            for node_id, _ts in self.sql_text_search_scored(
                term, limit=limit, id_prefix=id_prefix
            )
        ]

    def sql_text_search_scored(
        self, term: str, *, limit: int = 50, id_prefix: str | None = None
    ) -> list[tuple[str, int]]:
        """:meth:`sql_text_search` with timestamps: [(id, timestamp_us)].

        The timestamp is the merge key for cross-shard scatter-gather —
        per-shard result lists are each newest-first, so a global
        search can heap-merge them without re-sorting.  The search term
        is matched literally: ``%`` and ``_`` are escaped, so a user
        searching for ``100%_done`` cannot wildcard into unrelated (or,
        through a future scoping bug, other tenants') history.
        """
        pattern = _like_substring(term.lower())
        scope = ""
        params: list = [pattern, pattern]
        if id_prefix is not None:
            scope = " AND n.id LIKE ? ESCAPE '\\'"
            params.append(_like_prefix(id_prefix))
        params.append(limit)
        with self._read_context() as conn:
            rows = conn.execute(
                "SELECT n.id, n.timestamp_us FROM prov_nodes AS n"
                " LEFT JOIN prov_pages AS p ON p.id = n.page_id"
                " WHERE (lower(coalesce(n.label, p.title, '')) LIKE ? ESCAPE '\\'"
                "    OR lower(coalesce(p.url, '')) LIKE ? ESCAPE '\\')"
                + scope
                + " ORDER BY n.timestamp_us DESC, n.id LIMIT ?",
                params,
            )
            return [(row[0], row[1]) for row in rows]

    def sql_nodes_of_kind(self, kind: NodeKind) -> list[str]:
        with self._read_context() as conn:
            rows = conn.execute(
                "SELECT id FROM prov_nodes WHERE kind = ?"
                " ORDER BY timestamp_us, id",
                (NODE_KIND_IDS[kind],),
            )
            return [row[0] for row in rows]

    def sql_visits_for_url(self, url: str) -> list[str]:
        """All node ids recorded for *url* (the version-chain query)."""
        with self._read_context() as conn:
            rows = conn.execute(
                "SELECT n.id FROM prov_nodes AS n"
                " JOIN prov_pages AS p ON p.id = n.page_id"
                " WHERE p.url = ? ORDER BY n.timestamp_us, n.id",
                (url,),
            )
            return [row[0] for row in rows]

    # -- relevance index (the ranked-search sidecar) ------------------------------------

    def index_documents(self, docs: Iterable[tuple[str, list[str]]]) -> int:
        """Replace the index entries for *docs* (``[(node_id, tokens)]``).

        Runs on the writer connection inside the caller's transaction —
        the service's apply path calls it right after a batch's rows
        land, so a shard's index can never be observed ahead of or
        behind its rows.  Re-indexing a document replaces its postings
        wholesale, and the corpus aggregates (document count, total
        length) are maintained as deltas computed against the rows
        already present in the same transaction — re-applying a
        committed batch (journal crash replay) therefore changes
        nothing, the same exactly-once property the other row kinds
        get from their upserts.

        A node id appearing twice is applied in order, each occurrence
        replacing the previous: the interned-term order — and so the
        index bytes — is a function of the event stream alone, not of
        how the stream was cut into batches.
        """
        docs = list(docs)
        if not docs:
            return 0
        wave: dict[str, list[str]] = {}
        for doc_id, tokens in docs:
            if doc_id in wave:
                self._index_wave(wave)
                wave = {}
            wave[doc_id] = tokens
        self._index_wave(wave)
        return len(docs)

    def _index_wave(self, wave: dict[str, list[str]]) -> None:
        """Index one duplicate-free run of documents in bulk."""
        if not wave:
            return
        self._prefetch_nids([d for d in wave if d not in self._nids])
        nids = {doc_id: self._nid(doc_id) for doc_id in wave}
        old_lengths: dict[int, int] = {}
        for chunk in _chunked(list(nids.values())):
            placeholders = ",".join("?" * len(chunk))
            for nid, length in self.conn.execute(
                f"SELECT nid, length FROM prov_index_docs"
                f" WHERE nid IN ({placeholders})",
                chunk,
            ):
                old_lengths[nid] = length
        term_order: dict[str, None] = {}
        doc_rows: list[tuple[int, int]] = []
        posting_rows: list[tuple[str, int, int]] = []  # (term, nid, tf)
        docs_delta = 0
        length_delta = 0
        for doc_id, tokens in wave.items():
            nid = nids[doc_id]
            counts = Counter(tokens)
            length = sum(counts.values())
            old = old_lengths.get(nid)
            if old is None:
                docs_delta += 1
            length_delta += length - (old or 0)
            doc_rows.append((nid, length))
            for term, tf in counts.items():
                term_order.setdefault(term)
                posting_rows.append((term, nid, tf))
        if old_lengths:
            self.conn.executemany(
                "DELETE FROM prov_postings WHERE nid = ?",
                [(nid,) for nid in old_lengths],
            )
        missing = [term for term in term_order if term not in self._tids]
        if missing:
            # Interned in first-occurrence order: tid allocation is a
            # function of the per-shard event stream, which is what
            # keeps serial, thread, and process flushes byte-identical.
            self.conn.executemany(
                "INSERT OR IGNORE INTO prov_terms (term) VALUES (?)",
                [(term,) for term in missing],
            )
            for chunk in _chunked(missing):
                placeholders = ",".join("?" * len(chunk))
                for tid, term in self.conn.execute(
                    f"SELECT tid, term FROM prov_terms"
                    f" WHERE term IN ({placeholders})",
                    chunk,
                ):
                    self._tids[term] = tid
        if posting_rows:
            self.conn.executemany(
                "INSERT OR REPLACE INTO prov_postings (tid, nid, tf)"
                " VALUES (?, ?, ?)",
                [
                    (self._tids[term], nid, tf)
                    for term, nid, tf in posting_rows
                ],
            )
        self.conn.executemany(
            "INSERT INTO prov_index_docs (nid, length) VALUES (?, ?)"
            " ON CONFLICT(nid) DO UPDATE SET length=excluded.length",
            doc_rows,
        )
        if docs_delta or length_delta:
            count, total = self._index_counters()
            self._write_index_counters(
                count + docs_delta, total + length_delta
            )

    def _index_counters(self) -> tuple[int, int]:
        rows = dict(
            self.conn.execute(
                "SELECT key, value FROM prov_meta"
                " WHERE key IN ('index_docs', 'index_len')"
            )
        )
        return int(rows.get("index_docs", 0)), int(rows.get("index_len", 0))

    def _write_index_counters(self, docs: int, length: int) -> None:
        self.conn.executemany(
            "INSERT OR REPLACE INTO prov_meta (key, value) VALUES (?, ?)",
            [("index_docs", str(docs)), ("index_len", str(length))],
        )

    def index_stats(self) -> tuple[int, int, str]:
        """(documents, total token length, state) of the relevance index.

        State ``"ready"`` means the index is maintained; ``"stale"``
        means node text changed without index maintenance (ingest ran
        with indexing disabled, or the store was migrated from a
        pre-index schema) and the index must be rebuilt before ranked
        results can be trusted.
        """
        with self._read_context() as conn:
            rows = dict(
                conn.execute(
                    "SELECT key, value FROM prov_meta WHERE key IN"
                    " ('index_docs', 'index_len', 'index_state')"
                )
            )
        return (
            int(rows.get("index_docs", 0)),
            int(rows.get("index_len", 0)),
            rows.get("index_state", "ready"),
        )

    def index_stats_for_prefix(self, id_prefix: str) -> tuple[int, int]:
        """(documents, total token length) of one tenant's index slice.

        Tenant-scoped ranked search normalizes BM25 against the
        tenant's own corpus — another tenant's bulk ingest on the same
        shard must not shift a user's document-length statistics and
        reorder their results.  Cost is one indexed prefix scan of the
        tenant's rows.
        """
        pattern = _like_prefix(id_prefix)
        with self._read_context() as conn:
            row = conn.execute(
                "SELECT COUNT(*), COALESCE(SUM(d.length), 0)"
                " FROM prov_index_docs AS d"
                " JOIN prov_nodes AS n ON n.nid = d.nid"
                " WHERE n.id LIKE ? ESCAPE '\\'",
                (pattern,),
            ).fetchone()
        return row[0], row[1]

    def mark_index_stale(self) -> None:
        """Record that node text changed without index maintenance.

        Written on every disabled-indexing batch, never memoized:
        another *process* (the parent's lazy rebuild) can set the state
        back to ready at any time, and an instance-local "already
        marked" flag would skip the re-mark and leave everything
        ingested after the rebuild permanently invisible to ranked
        search.  One meta upsert per batch is noise next to the batch
        itself.
        """
        self.conn.execute(
            "INSERT OR REPLACE INTO prov_meta (key, value)"
            " VALUES ('index_state', 'stale')"
        )

    def set_index_state(self, state: str) -> None:
        self.conn.execute(
            "INSERT OR REPLACE INTO prov_meta (key, value)"
            " VALUES ('index_state', ?)",
            (state,),
        )

    def clear_index(self) -> None:
        """Wipe the index postings and documents (rebuild preamble).

        ``prov_terms`` survives deliberately: tids must be append-only
        stable, because worker *processes* cache term -> tid mappings
        and a rebuild that reallocated tids would make them silently
        write postings under the wrong terms.  Orphaned vocabulary
        rows (terms whose postings all vanished) are harmless — df is
        derived from posting lists, never from the terms table.
        """
        self.conn.execute("DELETE FROM prov_postings")
        self.conn.execute("DELETE FROM prov_index_docs")
        self._write_index_counters(0, 0)

    def _count_read(self, op: str) -> None:
        self.read_ops[op] += 1
        if self._read_ops_metric is not None:
            self._read_ops_metric.inc(1, label=op)

    def term_postings(
        self, terms: Iterable[str], *, id_prefix: str | None = None
    ) -> dict[str, list[tuple[str, int]]]:
        """Per-term posting lists: ``{term: [(node_id, tf)]}``.

        ``id_prefix`` scopes postings to one tenant's documents (the
        per-user ranked search); a scoped query therefore sees
        tenant-scoped document frequencies.  Lists are ordered by node
        id so downstream score accumulation is deterministic.
        """
        self._count_read("term_postings")
        out: dict[str, list[tuple[str, int]]] = {}
        with self._read_context() as conn:
            for term in dict.fromkeys(terms):
                params: list = [term]
                scope = ""
                if id_prefix is not None:
                    scope = " AND n.id LIKE ? ESCAPE '\\'"
                    params.append(_like_prefix(id_prefix))
                rows = conn.execute(
                    "SELECT n.id, p.tf FROM prov_postings AS p"
                    " JOIN prov_terms AS t ON t.tid = p.tid"
                    " JOIN prov_nodes AS n ON n.nid = p.nid"
                    " WHERE t.term = ?" + scope + " ORDER BY n.id",
                    params,
                )
                out[term] = [(row[0], row[1]) for row in rows]
        return out

    def index_doc_lengths(self, node_ids: Iterable[str]) -> dict[str, int]:
        """Indexed token counts for *node_ids* (BM25 length normalization)."""
        self._count_read("index_doc_lengths")
        out: dict[str, int] = {}
        with self._read_context() as conn:
            for chunk in _chunked(list(node_ids)):
                placeholders = ",".join("?" * len(chunk))
                for node_id, length in conn.execute(
                    f"SELECT n.id, d.length FROM prov_index_docs AS d"
                    f" JOIN prov_nodes AS n ON n.nid = d.nid"
                    f" WHERE n.id IN ({placeholders})",
                    chunk,
                ):
                    out[node_id] = length
        return out

    def nodes_brief(
        self, node_ids: Iterable[str]
    ) -> dict[str, tuple[int, int | None]]:
        """``{id: (timestamp_us, page_id)}`` — the ranking-blend facts."""
        self._count_read("nodes_brief")
        out: dict[str, tuple[int, int | None]] = {}
        with self._read_context() as conn:
            for chunk in _chunked(list(node_ids)):
                placeholders = ",".join("?" * len(chunk))
                for node_id, when, page_id in conn.execute(
                    f"SELECT id, timestamp_us, page_id FROM prov_nodes"
                    f" WHERE id IN ({placeholders})",
                    chunk,
                ):
                    out[node_id] = (when, page_id)
        return out

    def tenant_page_visits(
        self, pairs: Iterable[tuple[int, str]]
    ) -> dict[tuple[int, str], int]:
        """``{(page_id, id_prefix): count}`` — per-tenant page popularity.

        The raw frecency signal: how many of *that tenant's* nodes
        reference the page.  Counts ride the ``prov_nodes_page`` index.
        Pairs are grouped by tenant prefix and counted in chunked
        ``GROUP BY page_id`` passes — the paged-search scan blends
        *every* candidate, so per-pair point SELECTs would turn a
        broad query's first page into O(matches) SQL round-trips.
        """
        self._count_read("tenant_page_visits")
        out: dict[tuple[int, str], int] = {}
        by_prefix: dict[str, list[int]] = {}
        for page_id, prefix in dict.fromkeys(pairs):
            out[(page_id, prefix)] = 0
            by_prefix.setdefault(prefix, []).append(page_id)
        with self._read_context() as conn:
            for prefix, page_ids in by_prefix.items():
                pattern = _like_prefix(prefix)
                for chunk in _chunked(page_ids):
                    placeholders = ",".join("?" * len(chunk))
                    for page_id, count in conn.execute(
                        f"SELECT page_id, COUNT(*) FROM prov_nodes"
                        f" WHERE page_id IN ({placeholders})"
                        f" AND id LIKE ? ESCAPE '\\'"
                        f" GROUP BY page_id",
                        (*chunk, pattern),
                    ):
                        out[(page_id, prefix)] = count
        return out

    def node_texts(
        self, node_ids: Iterable[str]
    ) -> dict[str, tuple[str | None, str | None]]:
        """``{id: (effective_label, url)}`` — the snippet source text.

        The *effective* label is what the user actually saw: the stored
        label, or the page title it inherits when the label is NULL —
        byte-for-byte the text the indexer tokenized, so every term the
        index matched can be located (and highlighted) in this text.
        Positions are recovered downstream by re-running the shared
        analyzer over it (:func:`repro.service.search.extract_snippet`);
        storing offsets in the index would buy nothing, since the text
        must be fetched for display anyway.
        """
        self._count_read("node_texts")
        out: dict[str, tuple[str | None, str | None]] = {}
        with self._read_context() as conn:
            for chunk in _chunked(list(node_ids)):
                placeholders = ",".join("?" * len(chunk))
                for node_id, label, url in conn.execute(
                    f"SELECT n.id, coalesce(n.label, p.title), p.url"
                    f" FROM prov_nodes AS n"
                    f" LEFT JOIN prov_pages AS p ON p.id = n.page_id"
                    f" WHERE n.id IN ({placeholders})",
                    chunk,
                ):
                    out[node_id] = (label, url)
        return out

    def compact_terms(self) -> int:
        """Drop vocabulary rows whose posting lists are empty.

        Ghost terms accumulate when every document containing a term is
        re-indexed (or retention-deleted) away; they cost vocabulary
        scans, never correctness (df derives from posting lists).  Two
        invariants make this sweep safe against the tid caches worker
        processes keep:

        * **Live tids never shift** — SQLite deletes do not renumber
          surviving rows, so every term that still has postings keeps
          its tid.
        * **Dead tids are never reused** — the row holding ``MAX(tid)``
          is retained even when empty, so the rowid allocator can never
          hand a freed tid to a *new* term (which would make a stale
          cached mapping silently file postings under the wrong term).

        This instance's own term cache is cleared (it may hold dropped
        terms); callers running retention surgery already tell worker
        processes to drop theirs (:meth:`drop_row_caches`).  Runs on
        the writer connection inside the caller's transaction; returns
        the number of vocabulary rows dropped.
        """
        cursor = self.conn.execute(
            "DELETE FROM prov_terms"
            " WHERE tid NOT IN (SELECT DISTINCT tid FROM prov_postings)"
            " AND tid < (SELECT MAX(tid) FROM prov_terms)"
        )
        self._tids.clear()
        return cursor.rowcount

    def max_node_timestamp(self, id_prefix: str | None = None) -> int:
        """Newest node timestamp — the recency-blend anchor.

        With *id_prefix*, the newest node of one tenant: scoped ranked
        search must anchor recency at the tenant's own activity, or a
        co-tenant's ingest would age every hit and reorder results.
        """
        with self._read_context() as conn:
            if id_prefix is None:
                row = conn.execute(
                    "SELECT MAX(timestamp_us) FROM prov_nodes"
                ).fetchone()
            else:
                row = conn.execute(
                    "SELECT MAX(timestamp_us) FROM prov_nodes"
                    " WHERE id LIKE ? ESCAPE '\\'",
                    (_like_prefix(id_prefix),),
                ).fetchone()
        return row[0] or 0

    # -- retention surgery (per-tenant delete paths) ------------------------------------

    def load_subgraph(
        self, id_prefix: str, *, enforce_dag: bool = False
    ) -> ProvenanceGraph:
        """Reconstruct only the nodes and edges whose ids start with
        *id_prefix*.

        The multi-tenant retention path: one tenant's subgraph, labels
        and URLs inherited exactly as :meth:`load_graph` would.  Edges
        are matched through their source node; tenant edges never cross
        tenants, so this is exact.  Intervals are not loaded —
        retention decides by node identity and timestamp.
        """
        pattern = _like_prefix(id_prefix)
        graph = ProvenanceGraph(enforce_dag=enforce_dag)
        with self._read_context() as conn:
            node_attrs: dict[int, dict[str, AttrValue]] = {}
            for nid, name, value in conn.execute(
                "SELECT a.nid, a.name, a.value FROM prov_node_attrs AS a"
                " JOIN prov_nodes AS n ON n.nid = a.nid"
                " WHERE n.id LIKE ? ESCAPE '\\'",
                (pattern,),
            ):
                node_attrs.setdefault(nid, {})[name] = value
            id_by_nid: dict[int, str] = {}
            for (
                nid, node_id, kind, when, label, hidden, transition, url, title
            ) in conn.execute(
                "SELECT n.nid, n.id, n.kind, n.timestamp_us, n.label,"
                " n.hidden, n.transition, p.url, p.title"
                " FROM prov_nodes AS n"
                " LEFT JOIN prov_pages AS p ON p.id = n.page_id"
                " WHERE n.id LIKE ? ESCAPE '\\'"
                " ORDER BY n.timestamp_us, n.nid",
                (pattern,),
            ):
                if url is not None and label is None:
                    label = title
                attrs = node_attrs.get(nid, {})
                if hidden:
                    attrs["hidden"] = 1
                if transition is not None:
                    attrs["transition"] = _TRANSITION_BY_VALUE[transition]
                graph.add_node(
                    ProvNode(
                        id=node_id,
                        kind=NODE_KINDS_BY_ID[kind],
                        timestamp_us=when,
                        label=label or "",
                        url=url,
                        attrs=attrs,
                    )
                )
                id_by_nid[nid] = node_id
            edge_attrs: dict[int, dict[str, AttrValue]] = {}
            for edge_id, name, value in conn.execute(
                "SELECT a.edge_id, a.name, a.value FROM prov_edge_attrs AS a"
                " JOIN prov_edges AS e ON e.id = a.edge_id"
                " JOIN prov_nodes AS n ON n.nid = e.src"
                " WHERE n.id LIKE ? ESCAPE '\\'",
                (pattern,),
            ):
                edge_attrs.setdefault(edge_id, {})[name] = value
            for edge_id, kind, src, dst, when in conn.execute(
                "SELECT e.id, e.kind, e.src, e.dst, e.timestamp_us"
                " FROM prov_edges AS e"
                " JOIN prov_nodes AS n ON n.nid = e.src"
                " WHERE n.id LIKE ? ESCAPE '\\' ORDER BY e.id",
                (pattern,),
            ):
                src_id = id_by_nid.get(src)
                dst_id = id_by_nid.get(dst)
                if src_id is None or dst_id is None:
                    continue  # foreign endpoint: not this tenant's edge
                if when is None:
                    when = graph.node(dst_id).timestamp_us
                graph.add_edge(
                    EDGE_KINDS_BY_ID[kind],
                    src_id,
                    dst_id,
                    timestamp_us=when,
                    attrs=edge_attrs.get(edge_id, {}),
                )
        return graph

    def delete_nodes_by_id(
        self, node_ids: Iterable[str]
    ) -> tuple[int, int, int]:
        """Remove *node_ids* with full cascade; (nodes, edges, intervals).

        Writer-connection surgery for retention: the nodes, every edge
        touching them (attrs included), their intervals, their attr
        rows, and their relevance-index entries all go, with the index
        corpus counters adjusted.  Rows belonging to other tenants are
        untouched — edges are matched by endpoint.  The caller owns the
        transaction (commit or rollback).
        """
        ids = list(dict.fromkeys(node_ids))
        if not ids:
            return (0, 0, 0)
        nids: list[int] = []
        for chunk in _chunked(ids):
            placeholders = ",".join("?" * len(chunk))
            nids.extend(
                row[0]
                for row in self.conn.execute(
                    f"SELECT nid FROM prov_nodes WHERE id IN ({placeholders})",
                    chunk,
                )
            )
        if not nids:
            return (0, 0, 0)
        edge_ids: set[int] = set()
        for chunk in _chunked(nids):
            placeholders = ",".join("?" * len(chunk))
            for row in self.conn.execute(
                f"SELECT id FROM prov_edges WHERE src IN ({placeholders})"
                f" OR dst IN ({placeholders})",
                chunk + chunk,
            ):
                edge_ids.add(row[0])
        intervals = 0
        index_docs = 0
        index_length = 0
        for chunk in _chunked(nids):
            placeholders = ",".join("?" * len(chunk))
            intervals += self.conn.execute(
                f"DELETE FROM prov_intervals WHERE nid IN ({placeholders})",
                chunk,
            ).rowcount
            row = self.conn.execute(
                f"SELECT COUNT(*), COALESCE(SUM(length), 0)"
                f" FROM prov_index_docs WHERE nid IN ({placeholders})",
                chunk,
            ).fetchone()
            index_docs += row[0]
            index_length += row[1]
            self.conn.execute(
                f"DELETE FROM prov_index_docs WHERE nid IN ({placeholders})",
                chunk,
            )
            self.conn.execute(
                f"DELETE FROM prov_postings WHERE nid IN ({placeholders})",
                chunk,
            )
            self.conn.execute(
                f"DELETE FROM prov_node_attrs WHERE nid IN ({placeholders})",
                chunk,
            )
        for chunk in _chunked(sorted(edge_ids)):
            placeholders = ",".join("?" * len(chunk))
            self.conn.execute(
                f"DELETE FROM prov_edge_attrs"
                f" WHERE edge_id IN ({placeholders})",
                chunk,
            )
            self.conn.execute(
                f"DELETE FROM prov_edges WHERE id IN ({placeholders})",
                chunk,
            )
        nodes = 0
        for chunk in _chunked(nids):
            placeholders = ",".join("?" * len(chunk))
            nodes += self.conn.execute(
                f"DELETE FROM prov_nodes WHERE nid IN ({placeholders})",
                chunk,
            ).rowcount
        if index_docs or index_length:
            count, total = self._index_counters()
            self._write_index_counters(
                count - index_docs, total - index_length
            )
        # The row caches may reference rows this surgery erased; drop
        # them wholesale (they repopulate lazily), as rollback() does.
        # NB: this covers THIS instance only — a worker process holding
        # its own store on the same shard file needs
        # :meth:`drop_row_caches` delivered in-band (the ingest
        # pipeline's ``drop_shard_caches``).
        self.drop_row_caches()
        return (nodes, len(edge_ids), intervals)

    def prune_orphan_pages(self) -> int:
        """Delete page rows no node references (post-redaction privacy).

        ``forget_site`` must not leave the forgotten URLs sitting in
        ``prov_pages``; pages any tenant still references survive.
        """
        cursor = self.conn.execute(
            "DELETE FROM prov_pages WHERE id NOT IN"
            " (SELECT DISTINCT page_id FROM prov_nodes"
            "  WHERE page_id IS NOT NULL)"
        )
        self._pages.clear()
        return cursor.rowcount

    # -- accounting -----------------------------------------------------------------------

    def node_count(self) -> int:
        with self._read_context() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM prov_nodes"
            ).fetchone()[0]

    def edge_count(self) -> int:
        with self._read_context() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM prov_edges"
            ).fetchone()[0]

    def page_count(self) -> int:
        with self._read_context() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM prov_pages"
            ).fetchone()[0]

    def interval_count(self) -> int:
        with self._read_context() as conn:
            return conn.execute(
                "SELECT COUNT(*) FROM prov_intervals"
            ).fetchone()[0]

    def counts_for_id_prefix(self, id_prefix: str) -> tuple[int, int, int]:
        """(nodes, edges, intervals) whose node ids start with *id_prefix*.

        Edges and intervals are attributed through their source /
        subject node; in the multi-tenant layout every edge stays within
        one user's namespace, so this is an exact per-tenant count.
        """
        pattern = _like_prefix(id_prefix)
        with self._read_context() as conn:
            nodes = conn.execute(
                "SELECT COUNT(*) FROM prov_nodes WHERE id LIKE ? ESCAPE '\\'",
                (pattern,),
            ).fetchone()[0]
            edges = conn.execute(
                "SELECT COUNT(*) FROM prov_edges AS e"
                " JOIN prov_nodes AS n ON n.nid = e.src"
                " WHERE n.id LIKE ? ESCAPE '\\'",
                (pattern,),
            ).fetchone()[0]
            intervals = conn.execute(
                "SELECT COUNT(*) FROM prov_intervals AS i"
                " JOIN prov_nodes AS n ON n.nid = i.nid"
                " WHERE n.id LIKE ? ESCAPE '\\'",
                (pattern,),
            ).fetchone()[0]
        return nodes, edges, intervals

    def sql_counts(self) -> tuple[int, int, int, int]:
        """(nodes, edges, intervals, pages) in one read snapshot.

        The scatter-gather aggregate-stats path calls this once per
        shard from fan-out threads; bundling the four counts keeps each
        shard's contribution a single consistent snapshot.
        """
        with self._read_context() as conn:
            return (
                conn.execute("SELECT COUNT(*) FROM prov_nodes").fetchone()[0],
                conn.execute("SELECT COUNT(*) FROM prov_edges").fetchone()[0],
                conn.execute(
                    "SELECT COUNT(*) FROM prov_intervals"
                ).fetchone()[0],
                conn.execute("SELECT COUNT(*) FROM prov_pages").fetchone()[0],
            )

    def size_bytes(self) -> int:
        page_count = self.conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = self.conn.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size

    # -- internals ----------------------------------------------------------------------------

    def _intern_page(self, url: str, title: str) -> int:
        """Intern a URL; the title is fixed at first sight.

        Immutability matters for losslessness: nodes whose label equals
        the page title store NULL and inherit it on load — retroactive
        title updates would silently rewrite those nodes' labels.
        Later nodes with a different title store it explicitly.
        """
        return self._intern_pages({url: title})[url][0]

    def _intern_pages(
        self, first_titles: dict[str, str]
    ) -> dict[str, tuple[int, str]]:
        """Intern URLs in bulk; returns {url: (page_id, stored_title)}.

        The stored title is whatever the page row already carried (first
        sight wins), which callers need for label inheritance.
        """
        out: dict[str, tuple[int, str]] = {}
        missing: list[tuple[str, str]] = []
        for url, title in first_titles.items():
            cached = self._pages.get(url)
            if cached is not None:
                out[url] = cached
            else:
                missing.append((url, title))
        if missing:
            self.conn.executemany(
                "INSERT OR IGNORE INTO prov_pages (url, title) VALUES (?, ?)",
                missing,
            )
            for chunk in _chunked([url for url, _ in missing]):
                placeholders = ",".join("?" * len(chunk))
                for pid, url, title in self.conn.execute(
                    f"SELECT id, url, title FROM prov_pages"
                    f" WHERE url IN ({placeholders})",
                    chunk,
                ):
                    self._pages[url] = out[url] = (pid, title)
        return out

    def _materialize_inherited_ts(
        self, stale: list[tuple[int, int]]
    ) -> None:
        """Write inherited edge timestamps out before they change.

        *stale* holds ``(old_timestamp_us, nid)`` for nodes about to be
        re-recorded with a different timestamp.  Edges storing NULL
        inherit the destination node's time; pinning the old value
        keeps recorded provenance times from mutating retroactively.
        """
        if stale:
            self.conn.executemany(
                "UPDATE prov_edges SET timestamp_us = ?"
                " WHERE dst = ? AND timestamp_us IS NULL",
                stale,
            )

    def _prefetch_nids(self, node_ids: list[str]) -> None:
        """Warm the rowid/timestamp caches for *node_ids* in bulk."""
        if not node_ids:
            return
        for chunk in _chunked(node_ids):
            placeholders = ",".join("?" * len(chunk))
            for node_id, nid, when in self.conn.execute(
                f"SELECT id, nid, timestamp_us FROM prov_nodes"
                f" WHERE id IN ({placeholders})",
                chunk,
            ):
                self._nids[node_id] = nid
                self._node_ts[node_id] = when

    def _dst_timestamp(self, node_id: str) -> int | None:
        cached = self._node_ts.get(node_id)
        if cached is not None:
            return cached
        row = self.conn.execute(
            "SELECT timestamp_us FROM prov_nodes WHERE id = ?", (node_id,)
        ).fetchone()
        if row is None:
            return None
        self._node_ts[node_id] = row[0]
        return row[0]

    def _nid(
        self, node_id: str, conn: sqlite3.Connection | None = None
    ) -> int:
        nid = self._nids.get(node_id)
        if nid is not None:
            return nid
        row = (conn or self.conn).execute(
            "SELECT nid FROM prov_nodes WHERE id = ?", (node_id,)
        ).fetchone()
        if row is None:
            raise UnknownNodeError(node_id)
        self._nids[node_id] = row[0]
        return row[0]

    def _require_node(
        self, node_id: str, conn: sqlite3.Connection | None = None
    ) -> None:
        self._nid(node_id, conn)

    def _walk(
        self,
        conn: sqlite3.Connection,
        template: str,
        node_id: str,
        max_depth: int,
        kinds: Iterable[EdgeKind] | None,
    ) -> list[tuple[str, int]]:
        kinds_csv = ""
        if kinds is not None:
            kinds_csv = (
                "," + ",".join(str(EDGE_KIND_IDS[kind]) for kind in kinds) + ","
            )
        rows = conn.execute(
            template,
            {"start": node_id, "max_depth": max_depth, "kinds_csv": kinds_csv},
        )
        return [(row[0], row[1]) for row in rows]
