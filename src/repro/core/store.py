"""The SQLite-backed homogeneous provenance store.

Persists a :class:`~repro.core.graph.ProvenanceGraph` (plus display
intervals) in the Places-derived schema of :mod:`repro.core.schema`,
and answers the paper's queries *in SQL* — ancestors and descendants
run as recursive CTEs inside SQLite, exactly the kind of local
computation whose feasibility the paper set out to demonstrate.  The
latency experiment (E4) times these SQL paths; the in-memory query
engine (:mod:`repro.core.query`) is the optimized alternative measured
alongside.

The store normalizes like Places: URLs and titles live once in
``prov_pages``; visit-instance nodes reference them.  Node string ids
remain the public interface — integer rowids are internal.

Supports bulk persistence (:meth:`save_graph`), write-through capture
(:meth:`append_node` / :meth:`append_edge`), and lossless round-trips
(:meth:`load_graph`).
"""

from __future__ import annotations

import sqlite3
from collections.abc import Iterable

from repro.browser.transitions import TransitionType
from repro.core.capture import NodeInterval
from repro.core.graph import ProvenanceGraph
from repro.core.model import AttrValue, ProvEdge, ProvNode
from repro.core.schema import (
    ANCESTOR_QUERY,
    DESCENDANT_QUERY,
    EDGE_KIND_IDS,
    EDGE_KINDS_BY_ID,
    NODE_KIND_IDS,
    NODE_KINDS_BY_ID,
    PROVENANCE_SCHEMA,
    SCHEMA_VERSION,
)
from repro.core.taxonomy import EdgeKind, NodeKind
from repro.errors import SchemaVersionError, StoreClosedError, UnknownNodeError

_TRANSITION_NAMES = {t.name.lower(): t.value for t in TransitionType}
_TRANSITION_BY_VALUE = {t.value: t.name.lower() for t in TransitionType}


class ProvenanceStore:
    """SQLite persistence and SQL query layer for provenance graphs."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn: sqlite3.Connection | None = sqlite3.connect(path)
        self._nids: dict[str, int] = {}
        self._node_ts: dict[str, int] = {}
        existing = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type='table' AND name='prov_meta'"
        ).fetchone()
        if existing is None:
            self._conn.executescript(PROVENANCE_SCHEMA)
            self._conn.execute(
                "INSERT INTO prov_meta (key, value) VALUES ('schema_version', ?)",
                (str(SCHEMA_VERSION),),
            )
            self._conn.commit()
        else:
            found = int(
                self._conn.execute(
                    "SELECT value FROM prov_meta WHERE key = 'schema_version'"
                ).fetchone()[0]
            )
            if found != SCHEMA_VERSION:
                self._conn.close()
                self._conn = None
                raise SchemaVersionError(found, SCHEMA_VERSION)

    # -- lifecycle --------------------------------------------------------------

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreClosedError("provenance store is closed")
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def commit(self) -> None:
        self.conn.commit()

    def __enter__(self) -> "ProvenanceStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- writing ------------------------------------------------------------------

    def append_node(self, node: ProvNode) -> None:
        """Insert one node (id collisions replace, for idempotence)."""
        page_id = None
        stored_label: str | None = node.label
        if node.url is not None:
            page_id = self._intern_page(node.url, node.label)
            page_title = self.conn.execute(
                "SELECT title FROM prov_pages WHERE id = ?", (page_id,)
            ).fetchone()[0]
            if node.label == page_title:
                stored_label = None  # inherit from the page row

        attrs = dict(node.attrs)
        hidden = 1 if attrs.pop("hidden", 0) == 1 else 0
        transition = attrs.pop("transition", None)
        transition_id = None
        if isinstance(transition, str) and transition in _TRANSITION_NAMES:
            transition_id = _TRANSITION_NAMES[transition]
        elif transition is not None:
            attrs["transition"] = transition  # unknown value: keep generic

        cursor = self.conn.execute(
            "INSERT OR REPLACE INTO prov_nodes"
            " (id, kind, timestamp_us, page_id, label, hidden, transition)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                node.id,
                NODE_KIND_IDS[node.kind],
                node.timestamp_us,
                page_id,
                stored_label,
                hidden,
                transition_id,
            ),
        )
        self._nids[node.id] = cursor.lastrowid
        self._node_ts[node.id] = node.timestamp_us
        if attrs:
            nid = self._nids[node.id]
            self.conn.executemany(
                "INSERT OR REPLACE INTO prov_node_attrs (nid, name, value)"
                " VALUES (?, ?, ?)",
                [(nid, name, value) for name, value in attrs.items()],
            )

    def append_edge(self, edge: ProvEdge) -> None:
        stored_ts: int | None = edge.timestamp_us
        if self._dst_timestamp(edge.dst) == edge.timestamp_us:
            stored_ts = None  # inherit from the destination node
        self.conn.execute(
            "INSERT OR REPLACE INTO prov_edges (id, kind, src, dst, timestamp_us)"
            " VALUES (?, ?, ?, ?, ?)",
            (
                edge.id,
                EDGE_KIND_IDS[edge.kind],
                self._nid(edge.src),
                self._nid(edge.dst),
                stored_ts,
            ),
        )
        if edge.attrs:
            self.conn.executemany(
                "INSERT OR REPLACE INTO prov_edge_attrs (edge_id, name, value)"
                " VALUES (?, ?, ?)",
                [(edge.id, name, value) for name, value in edge.attrs.items()],
            )

    def append_interval(self, interval: NodeInterval) -> None:
        self.conn.execute(
            "INSERT INTO prov_intervals (nid, tab_id, opened_us, closed_us)"
            " VALUES (?, ?, ?, ?)",
            (
                self._nid(interval.node_id),
                interval.tab_id,
                interval.opened_us,
                interval.closed_us,
            ),
        )

    def save_graph(
        self,
        graph: ProvenanceGraph,
        intervals: Iterable[NodeInterval] = (),
    ) -> None:
        """Bulk-persist *graph* (and optional intervals), then commit."""
        for node in graph.nodes():
            self.append_node(node)
        for edge in graph.edges():
            self.append_edge(edge)
        for interval in intervals:
            self.append_interval(interval)
        self.commit()

    # -- loading --------------------------------------------------------------------

    def load_graph(self, *, enforce_dag: bool = True) -> ProvenanceGraph:
        """Reconstruct the full graph from the store."""
        graph = ProvenanceGraph(enforce_dag=enforce_dag)
        pages: dict[int, tuple[str, str]] = {
            row[0]: (row[1], row[2])
            for row in self.conn.execute("SELECT id, url, title FROM prov_pages")
        }
        node_attrs: dict[int, dict[str, AttrValue]] = {}
        for nid, name, value in self.conn.execute(
            "SELECT nid, name, value FROM prov_node_attrs"
        ):
            node_attrs.setdefault(nid, {})[name] = value

        id_by_nid: dict[int, str] = {}
        for nid, node_id, kind, when, page_id, label, hidden, transition in (
            self.conn.execute(
                "SELECT nid, id, kind, timestamp_us, page_id, label, hidden,"
                " transition FROM prov_nodes ORDER BY timestamp_us, nid"
            )
        ):
            url = None
            if page_id is not None:
                url, page_title = pages[page_id]
                if label is None:
                    label = page_title
            attrs = node_attrs.get(nid, {})
            if hidden:
                attrs["hidden"] = 1
            if transition is not None:
                attrs["transition"] = _TRANSITION_BY_VALUE[transition]
            graph.add_node(
                ProvNode(
                    id=node_id,
                    kind=NODE_KINDS_BY_ID[kind],
                    timestamp_us=when,
                    label=label or "",
                    url=url,
                    attrs=attrs,
                )
            )
            id_by_nid[nid] = node_id
            self._nids[node_id] = nid
            self._node_ts[node_id] = when

        edge_attrs: dict[int, dict[str, AttrValue]] = {}
        for edge_id, name, value in self.conn.execute(
            "SELECT edge_id, name, value FROM prov_edge_attrs"
        ):
            edge_attrs.setdefault(edge_id, {})[name] = value
        for edge_id, kind, src, dst, when in self.conn.execute(
            "SELECT id, kind, src, dst, timestamp_us FROM prov_edges ORDER BY id"
        ):
            dst_id = id_by_nid[dst]
            if when is None:
                when = graph.node(dst_id).timestamp_us
            graph.add_edge(
                EDGE_KINDS_BY_ID[kind],
                id_by_nid[src],
                dst_id,
                timestamp_us=when,
                attrs=edge_attrs.get(edge_id, {}),
            )
        return graph

    def load_intervals(self) -> list[NodeInterval]:
        rows = self.conn.execute(
            "SELECT n.id, i.tab_id, i.opened_us, i.closed_us"
            " FROM prov_intervals AS i JOIN prov_nodes AS n ON n.nid = i.nid"
            " ORDER BY i.opened_us"
        )
        return [
            NodeInterval(node_id=row[0], tab_id=row[1], opened_us=row[2],
                         closed_us=row[3])
            for row in rows
        ]

    # -- SQL queries (the paper's implementation path) ----------------------------------

    def sql_ancestors(
        self,
        node_id: str,
        *,
        max_depth: int = 100,
        kinds: Iterable[EdgeKind] | None = None,
    ) -> list[tuple[str, int]]:
        """Ancestors via recursive CTE; [(node_id, depth)] nearest-first."""
        self._require_node(node_id)
        return self._walk(ANCESTOR_QUERY, node_id, max_depth, kinds)

    def sql_descendants(
        self,
        node_id: str,
        *,
        max_depth: int = 100,
        kinds: Iterable[EdgeKind] | None = None,
    ) -> list[tuple[str, int]]:
        """Descendants via recursive CTE; [(node_id, depth)] nearest-first."""
        self._require_node(node_id)
        return self._walk(DESCENDANT_QUERY, node_id, max_depth, kinds)

    def sql_nodes_in_window(
        self, start_us: int, end_us: int, *, kind: NodeKind | None = None
    ) -> list[str]:
        """Node ids with timestamps in [start_us, end_us)."""
        if kind is None:
            rows = self.conn.execute(
                "SELECT id FROM prov_nodes"
                " WHERE timestamp_us >= ? AND timestamp_us < ?"
                " ORDER BY timestamp_us, id",
                (start_us, end_us),
            )
        else:
            rows = self.conn.execute(
                "SELECT id FROM prov_nodes"
                " WHERE timestamp_us >= ? AND timestamp_us < ? AND kind = ?"
                " ORDER BY timestamp_us, id",
                (start_us, end_us, NODE_KIND_IDS[kind]),
            )
        return [row[0] for row in rows]

    def sql_text_search(self, term: str, *, limit: int = 50) -> list[str]:
        """Substring search over labels, page titles, and URLs."""
        pattern = f"%{term.lower()}%"
        rows = self.conn.execute(
            "SELECT n.id FROM prov_nodes AS n"
            " LEFT JOIN prov_pages AS p ON p.id = n.page_id"
            " WHERE lower(coalesce(n.label, p.title, '')) LIKE ?"
            "    OR lower(coalesce(p.url, '')) LIKE ?"
            " ORDER BY n.timestamp_us DESC, n.id LIMIT ?",
            (pattern, pattern, limit),
        )
        return [row[0] for row in rows]

    def sql_nodes_of_kind(self, kind: NodeKind) -> list[str]:
        rows = self.conn.execute(
            "SELECT id FROM prov_nodes WHERE kind = ? ORDER BY timestamp_us, id",
            (NODE_KIND_IDS[kind],),
        )
        return [row[0] for row in rows]

    def sql_visits_for_url(self, url: str) -> list[str]:
        """All node ids recorded for *url* (the version-chain query)."""
        rows = self.conn.execute(
            "SELECT n.id FROM prov_nodes AS n"
            " JOIN prov_pages AS p ON p.id = n.page_id"
            " WHERE p.url = ? ORDER BY n.timestamp_us, n.id",
            (url,),
        )
        return [row[0] for row in rows]

    # -- accounting -----------------------------------------------------------------------

    def node_count(self) -> int:
        return self.conn.execute("SELECT COUNT(*) FROM prov_nodes").fetchone()[0]

    def edge_count(self) -> int:
        return self.conn.execute("SELECT COUNT(*) FROM prov_edges").fetchone()[0]

    def page_count(self) -> int:
        return self.conn.execute("SELECT COUNT(*) FROM prov_pages").fetchone()[0]

    def interval_count(self) -> int:
        return self.conn.execute("SELECT COUNT(*) FROM prov_intervals").fetchone()[0]

    def size_bytes(self) -> int:
        page_count = self.conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = self.conn.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size

    # -- internals ----------------------------------------------------------------------------

    def _intern_page(self, url: str, title: str) -> int:
        """Intern a URL; the title is fixed at first sight.

        Immutability matters for losslessness: nodes whose label equals
        the page title store NULL and inherit it on load — retroactive
        title updates would silently rewrite those nodes' labels.
        Later nodes with a different title store it explicitly.
        """
        row = self.conn.execute(
            "SELECT id FROM prov_pages WHERE url = ?", (url,)
        ).fetchone()
        if row is not None:
            return row[0]
        cursor = self.conn.execute(
            "INSERT INTO prov_pages (url, title) VALUES (?, ?)", (url, title)
        )
        return cursor.lastrowid

    def _dst_timestamp(self, node_id: str) -> int | None:
        cached = self._node_ts.get(node_id)
        if cached is not None:
            return cached
        row = self.conn.execute(
            "SELECT timestamp_us FROM prov_nodes WHERE id = ?", (node_id,)
        ).fetchone()
        if row is None:
            return None
        self._node_ts[node_id] = row[0]
        return row[0]

    def _nid(self, node_id: str) -> int:
        nid = self._nids.get(node_id)
        if nid is not None:
            return nid
        row = self.conn.execute(
            "SELECT nid FROM prov_nodes WHERE id = ?", (node_id,)
        ).fetchone()
        if row is None:
            raise UnknownNodeError(node_id)
        self._nids[node_id] = row[0]
        return row[0]

    def _require_node(self, node_id: str) -> None:
        self._nid(node_id)

    def _walk(
        self,
        template: str,
        node_id: str,
        max_depth: int,
        kinds: Iterable[EdgeKind] | None,
    ) -> list[tuple[str, int]]:
        kinds_csv = ""
        if kinds is not None:
            kinds_csv = (
                "," + ",".join(str(EDGE_KIND_IDS[kind]) for kind in kinds) + ","
            )
        rows = self.conn.execute(
            template,
            {"start": node_id, "max_depth": max_depth, "kinds_csv": kinds_csv},
        )
        return [(row[0], row[1]) for row in rows]
