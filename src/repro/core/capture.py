"""In-browser provenance capture.

Subscribes to the browser's event bus and maintains the homogeneous
provenance graph the paper envisions (section 3.4): page visits,
search terms, form submissions, bookmarks, and downloads as nodes;
links, redirects, embeds, typed-URL context, bookmark activations,
search generation, and co-open time relationships as edges.

Every capture feature the paper identifies as missing from 2009
browsers is individually switchable in :class:`CaptureConfig`, so the
ablation experiments can measure exactly what each buys:

* ``capture_typed_edges`` — the location-bar relationship browsers
  drop (section 3.2);
* ``capture_co_open`` — page-close tracking and co-open edges
  (section 3.2, "the simple addition of a corresponding close");
* ``capture_search_terms`` / ``capture_forms`` — search terms and form
  submissions as first-class nodes (section 3.3);
* ``unify_redirects`` — in addition to the hop-accurate redirect
  chain, add a direct user-action edge from source to final page so
  personalization can ignore redirect nodes (section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.browser.events import (
    BookmarkCreated,
    BrowserEvent,
    DownloadFinished,
    DownloadStarted,
    EmbedLoaded,
    FormSubmitted,
    NavigationCommitted,
    PageClosed,
    SearchIssued,
    TabClosed,
    TabOpened,
)
from repro.browser.session import Browser
from repro.browser.transitions import TransitionType
from repro.core.graph import ProvenanceGraph
from repro.core.model import ProvNode
from repro.core.taxonomy import EdgeKind, NodeKind
from repro.core.versioning import NodeVersioningPolicy, VersioningPolicy
from repro.ids import IdAllocator, content_id


@dataclass(frozen=True)
class CaptureConfig:
    """Which provenance the capture layer records."""

    capture_links: bool = True
    capture_redirects: bool = True
    capture_embeds: bool = True
    capture_typed_edges: bool = True
    capture_bookmarks: bool = True
    capture_search_terms: bool = True
    capture_forms: bool = True
    capture_downloads: bool = True
    capture_co_open: bool = True
    unify_redirects: bool = True

    @classmethod
    def places_equivalent(cls) -> "CaptureConfig":
        """Record only what Firefox 3 recorded relationally.

        First-class edges only: links, redirects, embeds.  This is the
        configuration the sparsity ablation (E12) compares against the
        full capture.
        """
        return cls(
            capture_typed_edges=False,
            capture_bookmarks=False,
            capture_search_terms=False,
            capture_forms=False,
            capture_co_open=False,
            unify_redirects=False,
        )


@dataclass(frozen=True, slots=True)
class NodeInterval:
    """One page-display interval, keyed to its provenance node."""

    node_id: str
    tab_id: int
    opened_us: int
    closed_us: int

    def overlaps(self, other: "NodeInterval") -> bool:
        return self.opened_us < other.closed_us and other.opened_us < self.closed_us


@dataclass
class _TabState:
    """What the capture layer remembers about one open tab."""

    current_node: str | None = None
    opened_us: int = 0
    pending_search: tuple[str, str] | None = None  # (term node, results url)
    pending_form: tuple[str, str] | None = None  # (form node, action url)


class ProvenanceCapture:
    """The provenance-aware browser's recording half."""

    def __init__(
        self,
        *,
        policy: VersioningPolicy | None = None,
        config: CaptureConfig | None = None,
    ) -> None:
        self.policy = policy or NodeVersioningPolicy()
        self.config = config or CaptureConfig()
        self.graph = ProvenanceGraph(enforce_dag=self.policy.enforce_dag)
        self.intervals: list[NodeInterval] = []
        self._alloc = IdAllocator()
        self._tabs: dict[int, _TabState] = {}
        self._visit_nodes: dict[int, str] = {}  # places visit id -> node id
        self._bookmark_nodes: dict[int, str] = {}
        self._download_nodes: dict[int, str] = {}
        self._store = None  # optional write-through ProvenanceStore
        self.events_seen = 0

    def attach_store(self, store) -> "ProvenanceCapture":
        """Persist write-through: every node/edge/interval goes straight
        to *store* as it is captured (the browser-realistic mode — no
        bulk save on shutdown).  Existing graph contents are flushed
        first so attachment order doesn't matter.
        """
        for node in self.graph.nodes():
            store.append_node(node)
        for edge in self.graph.edges():
            store.append_edge(edge)
        for interval in self.intervals:
            store.append_interval(interval)
        self._store = store
        return self

    # -- wiring -------------------------------------------------------------------

    def attach(self, browser: Browser) -> "ProvenanceCapture":
        """Subscribe to *browser*'s event bus; returns self for chaining."""
        browser.bus.subscribe(self.handle)
        return self

    def detach(self, browser: Browser) -> None:
        browser.bus.unsubscribe(self.handle)

    # -- event dispatch ------------------------------------------------------------

    def handle(self, event: BrowserEvent) -> None:
        """Process one browser event (the bus listener)."""
        self.events_seen += 1
        if isinstance(event, TabOpened):
            self._tabs[event.tab_id] = _TabState()
        elif isinstance(event, TabClosed):
            self._tabs.pop(event.tab_id, None)
        elif isinstance(event, NavigationCommitted):
            self._on_navigation(event)
        elif isinstance(event, EmbedLoaded):
            self._on_embed(event)
        elif isinstance(event, PageClosed):
            self._on_page_closed(event)
        elif isinstance(event, SearchIssued):
            self._on_search(event)
        elif isinstance(event, FormSubmitted):
            self._on_form(event)
        elif isinstance(event, DownloadStarted):
            self._on_download(event)
        elif isinstance(event, BookmarkCreated):
            self._on_bookmark_created(event)
        elif isinstance(event, DownloadFinished):
            self._on_download_finished(event)

    # -- navigation -----------------------------------------------------------------

    def _on_navigation(self, event: NavigationCommitted) -> None:
        tab = self._tabs.setdefault(event.tab_id, _TabState())
        source_node = tab.current_node
        config = self.config

        # Redirect hops become their own (hidden) visit nodes chained by
        # REDIRECT edges; the user-action edge lands on the first hop.
        chain_nodes: list[str] = []
        if event.redirect_chain and config.capture_redirects:
            for hop in event.redirect_chain:
                hop_node = self._new_visit(
                    str(hop), "", event.timestamp_us, hidden=1
                )
                chain_nodes.append(hop_node)

        final_node = self._new_visit(
            str(event.url),
            event.title,
            event.timestamp_us,
            transition=event.transition.name.lower(),
        )
        self._visit_nodes[event.visit_id] = final_node

        # The user-action edge from the source page.
        action_kind = self._action_edge_kind(event)
        first_target = chain_nodes[0] if chain_nodes else final_node
        if source_node is not None and action_kind is not None:
            self._edge(action_kind, source_node, first_target, event.timestamp_us)
        elif source_node is None and chain_nodes:
            # No source (fresh tab/typed): the chain still needs its head
            # anchored to nothing; hops simply chain to the final node.
            pass

        # Chain the hops and land on the final node.
        if chain_nodes and config.capture_redirects:
            for earlier, later in zip(chain_nodes, chain_nodes[1:]):
                self._edge(EdgeKind.REDIRECT, earlier, later, event.timestamp_us)
            self._edge(
                EdgeKind.REDIRECT, chain_nodes[-1], final_node, event.timestamp_us
            )
            if config.unify_redirects and source_node is not None and action_kind:
                self._edge(
                    action_kind,
                    source_node,
                    final_node,
                    event.timestamp_us,
                    attrs={"unified": 1},
                )

        # Bookmark activation: edge from the bookmark object.
        if (
            event.via_bookmark_id is not None
            and config.capture_bookmarks
            and event.via_bookmark_id in self._bookmark_nodes
        ):
            self._edge(
                EdgeKind.BOOKMARK_CLICK,
                self._bookmark_nodes[event.via_bookmark_id],
                final_node,
                event.timestamp_us,
            )

        # Search generation: the pending search term points here.
        if tab.pending_search is not None and config.capture_search_terms:
            term_node, results_url = tab.pending_search
            if str(event.url) == results_url or str(event.requested_url) == results_url:
                self._edge(
                    EdgeKind.SEARCHED, term_node, final_node, event.timestamp_us
                )
            tab.pending_search = None

        # Form generation: the pending submission points here.
        if tab.pending_form is not None and config.capture_forms:
            form_node, action_url = tab.pending_form
            if str(event.requested_url) == action_url or str(event.url) == action_url:
                self._edge(
                    EdgeKind.FORM_GENERATED, form_node, final_node,
                    event.timestamp_us,
                )
            tab.pending_form = None

        # Co-open edges: earlier-opened pages in *other* tabs point at
        # the new page (the paper's time-ordering rule).
        if config.capture_co_open:
            for other_id, other in self._tabs.items():
                if other_id == event.tab_id or other.current_node is None:
                    continue
                self._edge(
                    EdgeKind.CO_OPEN,
                    other.current_node,
                    final_node,
                    event.timestamp_us,
                )

        tab.current_node = final_node
        tab.opened_us = event.timestamp_us

    def _action_edge_kind(self, event: NavigationCommitted) -> EdgeKind | None:
        transition = event.transition
        config = self.config
        if transition is TransitionType.LINK:
            return EdgeKind.LINK if config.capture_links else None
        if transition is TransitionType.TYPED:
            return EdgeKind.TYPED_FROM if config.capture_typed_edges else None
        if transition is TransitionType.BOOKMARK:
            # The visit's graph antecedent is the bookmark object (added
            # separately); the tab-context edge is second-class, treated
            # like typed context.
            return EdgeKind.TYPED_FROM if config.capture_typed_edges else None
        return None

    # -- other events ---------------------------------------------------------------

    def _on_embed(self, event: EmbedLoaded) -> None:
        if not self.config.capture_embeds:
            return
        tab = self._tabs.setdefault(event.tab_id, _TabState())
        embed_node = self._new_visit(
            str(event.embed_url), "", event.timestamp_us, hidden=1
        )
        self._visit_nodes[event.visit_id] = embed_node
        parent = tab.current_node
        if parent is not None:
            self._edge(EdgeKind.EMBED, parent, embed_node, event.timestamp_us)

    def _on_page_closed(self, event: PageClosed) -> None:
        if not self.config.capture_co_open:
            return
        tab = self._tabs.get(event.tab_id)
        if tab is None or tab.current_node is None:
            return
        interval = NodeInterval(
            node_id=tab.current_node,
            tab_id=event.tab_id,
            opened_us=event.opened_us,
            closed_us=event.timestamp_us,
        )
        self.intervals.append(interval)
        if self._store is not None:
            self._store.append_interval(interval)

    def _on_search(self, event: SearchIssued) -> None:
        if not self.config.capture_search_terms:
            return
        tab = self._tabs.setdefault(event.tab_id, _TabState())
        term_id = content_id("term", event.query.lower())
        existing = self.graph.get(term_id)
        if existing is None:
            node = ProvNode(
                id=term_id,
                kind=NodeKind.SEARCH_TERM,
                timestamp_us=event.timestamp_us,
                label=event.query,
                attrs={"engine": event.engine_host},
            )
            self._add_node(node)
        tab.pending_search = (term_id, str(event.results_url))

    def _on_form(self, event: FormSubmitted) -> None:
        if not self.config.capture_forms:
            return
        tab = self._tabs.setdefault(event.tab_id, _TabState())
        values = " ".join(value for _name, value in event.fields)
        node = ProvNode(
            id=self._alloc.next("form"),
            kind=NodeKind.FORM_SUBMISSION,
            timestamp_us=event.timestamp_us,
            label=values,
            url=str(event.action_url),
            attrs={"fields": ",".join(name for name, _ in event.fields)},
        )
        self._add_node(node)
        if tab.current_node is not None:
            self._edge(
                EdgeKind.FORM_FROM, tab.current_node, node.id, event.timestamp_us
            )
        tab.pending_form = (node.id, str(event.action_url))

    def _on_download(self, event: DownloadStarted) -> None:
        if not self.config.capture_downloads:
            return
        tab = self._tabs.setdefault(event.tab_id, _TabState())
        node = ProvNode(
            id=self._alloc.next("dl"),
            kind=NodeKind.DOWNLOAD,
            timestamp_us=event.timestamp_us,
            label=event.download_url.filename or str(event.download_url),
            url=str(event.download_url),
            attrs={
                "target_path": event.target_path,
                "download_id": event.download_id,
                "state": "started",
            },
        )
        self._add_node(node)
        self._download_nodes[event.download_id] = node.id
        if tab.current_node is not None:
            self._edge(
                EdgeKind.DOWNLOADED, tab.current_node, node.id, event.timestamp_us
            )

    def _on_download_finished(self, event: DownloadFinished) -> None:
        # Nodes are immutable; completion state lives in the download
        # store.  Nothing further to record for the graph.
        return

    def _on_bookmark_created(self, event: BookmarkCreated) -> None:
        if not self.config.capture_bookmarks:
            return
        node = ProvNode(
            id=self._alloc.next("bm"),
            kind=NodeKind.BOOKMARK,
            timestamp_us=event.timestamp_us,
            label=event.title,
            url=str(event.url),
            attrs={"bookmark_id": event.bookmark_id},
        )
        self._add_node(node)
        self._bookmark_nodes[event.bookmark_id] = node.id
        # The bookmark descends from the page visit it was created on.
        tab = self._tabs.get(event.tab_id)
        if tab is not None and tab.current_node is not None:
            self._edge(
                EdgeKind.BOOKMARKED, tab.current_node, node.id, event.timestamp_us
            )

    # -- lookups ----------------------------------------------------------------------

    def node_for_visit(self, places_visit_id: int) -> str | None:
        """The graph node recorded for a Places visit id, if any."""
        return self._visit_nodes.get(places_visit_id)

    def node_for_download(self, download_id: int) -> str | None:
        return self._download_nodes.get(download_id)

    def node_for_bookmark(self, bookmark_id: int) -> str | None:
        return self._bookmark_nodes.get(bookmark_id)

    def current_node(self, tab_id: int) -> str | None:
        tab = self._tabs.get(tab_id)
        return tab.current_node if tab else None

    # -- internals -----------------------------------------------------------------------

    def _new_visit(
        self,
        url: str,
        title: str,
        when_us: int,
        **attrs: str | int | float,
    ) -> str:
        node = self.policy.visit_node(url, title, when_us, **attrs)
        before = self.graph.node_count
        resolved = self.policy.resolve_visit(self.graph, node)
        if self._store is not None and self.graph.node_count > before:
            self._store.append_node(resolved)
        return resolved.id

    def _add_node(self, node: ProvNode) -> None:
        self.graph.add_node(node)
        if self._store is not None:
            self._store.append_node(node)

    def _edge(
        self,
        kind: EdgeKind,
        src: str,
        dst: str,
        when_us: int,
        *,
        attrs: dict[str, str | int | float] | None = None,
    ) -> None:
        if src == dst:
            # Self-transitions (page reload, revisit under edge
            # versioning) carry no lineage; skip.
            return
        edge = self.graph.add_edge(
            kind, src, dst, timestamp_us=when_us, attrs=attrs
        )
        if self._store is not None:
            self._store.append_edge(edge)
