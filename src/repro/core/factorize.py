"""Factorized provenance storage (ablation E11).

Section 3.1 cites Chapman et al.'s factorization and inheritance
methods as "almost certainly applicable to browser history".  This
module applies the two techniques that fit the domain:

* **string factorization** — node URLs decompose into (host, path)
  with hosts stored once in a dictionary table, and repeated labels
  (titles recur across visit instances of the same page) stored once
  in a label dictionary.  Browser history is extremely repetitive in
  exactly these fields, which is why the technique pays.
* **edge-identity inheritance** — under node versioning, the i-th
  visit of page A following a link to page B produces an edge whose
  (kind, page-pair) identity repeats; the factorized form stores the
  page-pair once and per-traversal rows as (pair_id, timestamp).

:func:`write_factorized` persists a graph in this form and returns a
:class:`FactorizationReport` comparing sizes against the plain store
schema, which is what the E11 bench prints.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from repro.core.graph import ProvenanceGraph
from repro.errors import StoreError
from repro.web.url import Url

_FACTORIZED_SCHEMA = """
CREATE TABLE f_meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
CREATE TABLE f_hosts (id INTEGER PRIMARY KEY, host TEXT UNIQUE NOT NULL);
CREATE TABLE f_labels (id INTEGER PRIMARY KEY, label TEXT UNIQUE NOT NULL);
CREATE TABLE f_kinds (id INTEGER PRIMARY KEY, kind TEXT UNIQUE NOT NULL);
CREATE TABLE f_nodes (
    id TEXT PRIMARY KEY,
    kind_id INTEGER NOT NULL REFERENCES f_kinds (id),
    timestamp_us INTEGER NOT NULL,
    label_id INTEGER REFERENCES f_labels (id),
    host_id INTEGER REFERENCES f_hosts (id),
    path TEXT
);
CREATE TABLE f_edge_pairs (
    id INTEGER PRIMARY KEY,
    kind_id INTEGER NOT NULL REFERENCES f_kinds (id),
    src TEXT NOT NULL,
    dst TEXT NOT NULL,
    UNIQUE (kind_id, src, dst)
);
CREATE TABLE f_edge_instances (
    pair_id INTEGER NOT NULL REFERENCES f_edge_pairs (id),
    timestamp_us INTEGER NOT NULL
);
CREATE INDEX f_nodes_host ON f_nodes (host_id);
CREATE INDEX f_edge_pairs_src ON f_edge_pairs (src);
CREATE INDEX f_edge_pairs_dst ON f_edge_pairs (dst);
"""


@dataclass(frozen=True)
class FactorizationReport:
    """Size accounting for a factorized store."""

    nodes: int
    edges: int
    distinct_hosts: int
    distinct_labels: int
    distinct_edge_pairs: int
    factorized_bytes: int

    @property
    def edge_sharing(self) -> float:
        """Mean traversals per distinct edge pair (>1 means sharing)."""
        if not self.distinct_edge_pairs:
            return 0.0
        return self.edges / self.distinct_edge_pairs


def write_factorized(graph: ProvenanceGraph, path: str = ":memory:"
                     ) -> FactorizationReport:
    """Persist *graph* in factorized form; return the size report.

    The connection is closed before returning (the report carries the
    size), except for in-memory stores, whose size is read first.
    """
    conn = sqlite3.connect(path)
    try:
        conn.executescript(_FACTORIZED_SCHEMA)
        conn.execute(
            "INSERT INTO f_meta (key, value) VALUES ('format', 'factorized-v1')"
        )
        host_ids: dict[str, int] = {}
        label_ids: dict[str, int] = {}
        kind_ids: dict[str, int] = {}

        def intern(table: str, cache: dict[str, int], value: str) -> int:
            cached = cache.get(value)
            if cached is not None:
                return cached
            column = {"f_hosts": "host", "f_labels": "label", "f_kinds": "kind"}[table]
            cursor = conn.execute(
                f"INSERT INTO {table} ({column}) VALUES (?)", (value,)
            )
            cache[value] = cursor.lastrowid
            return cursor.lastrowid

        for node in graph.nodes():
            host_id = None
            node_path = None
            if node.url is not None:
                host, node_path = _split_url(node.url)
                host_id = intern("f_hosts", host_ids, host)
            label_id = (
                intern("f_labels", label_ids, node.label) if node.label else None
            )
            kind_id = intern("f_kinds", kind_ids, node.kind.value)
            conn.execute(
                "INSERT INTO f_nodes (id, kind_id, timestamp_us, label_id,"
                " host_id, path) VALUES (?, ?, ?, ?, ?, ?)",
                (node.id, kind_id, node.timestamp_us, label_id, host_id, node_path),
            )

        pair_ids: dict[tuple[int, str, str], int] = {}
        edge_count = 0
        for edge in graph.edges():
            kind_id = intern("f_kinds", kind_ids, edge.kind.value)
            key = (kind_id, edge.src, edge.dst)
            pair_id = pair_ids.get(key)
            if pair_id is None:
                cursor = conn.execute(
                    "INSERT INTO f_edge_pairs (kind_id, src, dst) VALUES (?, ?, ?)",
                    key,
                )
                pair_id = cursor.lastrowid
                pair_ids[key] = pair_id
            conn.execute(
                "INSERT INTO f_edge_instances (pair_id, timestamp_us) VALUES (?, ?)",
                (pair_id, edge.timestamp_us),
            )
            edge_count += 1

        conn.commit()
        page_count = conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = conn.execute("PRAGMA page_size").fetchone()[0]
        return FactorizationReport(
            nodes=graph.node_count,
            edges=edge_count,
            distinct_hosts=len(host_ids),
            distinct_labels=len(label_ids),
            distinct_edge_pairs=len(pair_ids),
            factorized_bytes=page_count * page_size,
        )
    except sqlite3.Error as exc:
        raise StoreError(f"factorized write failed: {exc}") from exc
    finally:
        conn.close()


_DENORMALIZED_SCHEMA = """
CREATE TABLE d_nodes (
    id TEXT PRIMARY KEY,
    kind TEXT NOT NULL,
    timestamp_us INTEGER NOT NULL,
    label TEXT NOT NULL DEFAULT '',
    url TEXT
);
CREATE INDEX d_nodes_url ON d_nodes (url);
CREATE TABLE d_edges (
    id INTEGER PRIMARY KEY,
    kind TEXT NOT NULL,
    src TEXT NOT NULL,
    dst TEXT NOT NULL,
    timestamp_us INTEGER NOT NULL
);
CREATE INDEX d_edges_src ON d_edges (src);
CREATE INDEX d_edges_dst ON d_edges (dst);
"""


def write_denormalized(graph: ProvenanceGraph, path: str = ":memory:") -> int:
    """Persist *graph* naively (full strings inline); return byte size.

    The strawman baseline for E11: every node row repeats its full URL
    and label, every edge row carries two string node ids.  This is
    what a provenance store looks like *before* applying either the
    Places-style normalization of :mod:`repro.core.store` or the
    Chapman-style factorization above.
    """
    conn = sqlite3.connect(path)
    try:
        conn.executescript(_DENORMALIZED_SCHEMA)
        for node in graph.nodes():
            conn.execute(
                "INSERT INTO d_nodes (id, kind, timestamp_us, label, url)"
                " VALUES (?, ?, ?, ?, ?)",
                (node.id, node.kind.value, node.timestamp_us, node.label,
                 node.url),
            )
        for edge in graph.edges():
            conn.execute(
                "INSERT INTO d_edges (id, kind, src, dst, timestamp_us)"
                " VALUES (?, ?, ?, ?, ?)",
                (edge.id, edge.kind.value, edge.src, edge.dst,
                 edge.timestamp_us),
            )
        conn.commit()
        page_count = conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = conn.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size
    except sqlite3.Error as exc:
        raise StoreError(f"denormalized write failed: {exc}") from exc
    finally:
        conn.close()


def _split_url(url_text: str) -> tuple[str, str]:
    """Split a URL into (scheme://host, rest) for host interning."""
    try:
        url = Url.parse(url_text)
    except Exception:  # noqa: BLE001 - non-URL strings stay whole
        return ("", url_text)
    rest = url.path if not url.query else f"{url.path}?{url.query}"
    return (url.origin, rest)
