"""Node and edge value types for the provenance graph.

Nodes and edges are immutable records.  ``attrs`` carries the
semi-structured remainder (section 3.1 discusses exactly this design
tension: attributes versus instances); everything queries touch on hot
paths — kind, timestamp, URL, label — is a first-class field.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.core.taxonomy import EdgeKind, NodeKind

#: Attribute values are restricted to SQLite-storable scalars so the
#: homogeneous store can persist them losslessly.
AttrValue = str | int | float


def _frozen_attrs(attrs: Mapping[str, AttrValue] | None) -> Mapping[str, AttrValue]:
    return MappingProxyType(dict(attrs) if attrs else {})


@dataclass(frozen=True)
class ProvNode:
    """One object in the provenance graph.

    ``label`` is the human-facing text (title for visits, query text
    for search terms, filename for downloads) — it is also what textual
    seeding in contextual search indexes.  ``url`` is set for every
    node kind that has one (visits, pages, downloads, bookmarks).
    """

    id: str
    kind: NodeKind
    timestamp_us: int
    label: str = ""
    url: str | None = None
    attrs: Mapping[str, AttrValue] = field(default_factory=lambda: _frozen_attrs(None))

    def __post_init__(self) -> None:
        if not self.id:
            raise ValueError("node id must be non-empty")
        if self.timestamp_us < 0:
            raise ValueError("node timestamp must be non-negative")
        object.__setattr__(self, "attrs", _frozen_attrs(self.attrs))

    @property
    def search_text(self) -> str:
        """The text a textual search sees for this node (label + URL)."""
        if self.url:
            return f"{self.label} {self.url}"
        return self.label

    def attr(self, name: str, default: AttrValue | None = None) -> AttrValue | None:
        return self.attrs.get(name, default)


@dataclass(frozen=True)
class ProvEdge:
    """One relationship: ``src`` is the ancestor, ``dst`` the descendant."""

    id: int
    kind: EdgeKind
    src: str
    dst: str
    timestamp_us: int
    attrs: Mapping[str, AttrValue] = field(default_factory=lambda: _frozen_attrs(None))

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError(f"self-loop on {self.src!r} is not provenance")
        if self.timestamp_us < 0:
            raise ValueError("edge timestamp must be non-negative")
        object.__setattr__(self, "attrs", _frozen_attrs(self.attrs))

    @property
    def is_user_action(self) -> bool:
        return self.kind.is_user_action

    @property
    def is_lineage(self) -> bool:
        return self.kind.is_lineage
