"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
errors such as :class:`TypeError`.  Subpackages raise the most specific
subclass that applies; the class docstrings describe when each is used.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""


# --------------------------------------------------------------------------
# Web substrate errors
# --------------------------------------------------------------------------


class WebError(ReproError):
    """Base class for errors in the synthetic web substrate."""


class InvalidUrlError(WebError, ValueError):
    """A string could not be parsed as a URL."""


class PageNotFoundError(WebError, KeyError):
    """A fetch referenced a URL that does not exist in the web graph."""


class RedirectLoopError(WebError):
    """A redirect chain exceeded the maximum number of hops."""


# --------------------------------------------------------------------------
# Browser substrate errors
# --------------------------------------------------------------------------


class BrowserError(ReproError):
    """Base class for errors in the browser simulator."""


class NoSuchTabError(BrowserError, KeyError):
    """An operation referenced a tab id that is not open."""


class NoSuchBookmarkError(BrowserError, KeyError):
    """An operation referenced a bookmark id that does not exist."""


class NoSuchDownloadError(BrowserError, KeyError):
    """An operation referenced a download id that does not exist."""


class NavigationError(BrowserError):
    """A navigation could not be completed (e.g. bad URL, closed tab)."""


# --------------------------------------------------------------------------
# Provenance core errors
# --------------------------------------------------------------------------


class ProvenanceError(ReproError):
    """Base class for errors in the provenance core."""


class CycleError(ProvenanceError):
    """An edge insertion would create a cycle in the provenance DAG.

    The paper (section 3.1) requires provenance to be acyclic; the
    versioning policies exist precisely to prevent this error from ever
    surfacing during normal capture.  It is raised only when a caller
    bypasses the policies and inserts a cyclic edge directly.
    """

    def __init__(self, source: str, target: str) -> None:
        super().__init__(
            f"edge {source!r} -> {target!r} would create a cycle in the provenance graph"
        )
        self.source = source
        self.target = target


class UnknownNodeError(ProvenanceError, KeyError):
    """A graph or store operation referenced a node id that does not exist."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"unknown provenance node: {node_id!r}")
        self.node_id = node_id


class UnknownEdgeError(ProvenanceError, KeyError):
    """A graph or store operation referenced an edge id that does not exist."""

    def __init__(self, edge_id: str) -> None:
        super().__init__(f"unknown provenance edge: {edge_id!r}")
        self.edge_id = edge_id


class DuplicateNodeError(ProvenanceError):
    """A node with the same id was inserted twice with different content."""

    def __init__(self, node_id: str) -> None:
        super().__init__(f"duplicate provenance node: {node_id!r}")
        self.node_id = node_id


class StoreError(ProvenanceError):
    """A storage-layer failure (schema mismatch, closed connection, ...)."""


class StoreClosedError(StoreError):
    """An operation was attempted on a store that has been closed."""


class StoreAffinityError(StoreError):
    """A store bound to one thread was touched from another.

    While a flush worker holds a store exclusively (see
    :meth:`repro.core.store.ProvenanceStore.exclusive`), writes from any
    other thread must fail loudly instead of interleaving statements
    into the worker's open transaction.
    """


class SchemaVersionError(StoreError):
    """An on-disk store has a schema version this library cannot read."""

    def __init__(self, found: int, expected: int) -> None:
        super().__init__(
            f"store schema version {found} is not supported (expected {expected})"
        )
        self.found = found
        self.expected = expected


class WorkerCrashedError(ReproError):
    """A shard worker process died before acknowledging its batches.

    Raised by the process-based ingest path when a worker is killed (or
    crashes) mid-flush.  The batches it held are requeued by the
    pipeline and the journal still covers them, so a retrying flush —
    or a full crash replay — lands every event exactly once; this error
    is infrastructure, never a data problem, and is therefore not
    quarantined by :meth:`repro.service.ingest.IngestPipeline.replay`.
    """


class RemoteApplyError(ReproError):
    """A shard worker process rejected a batch with a data error.

    The worker's original exception (e.g. :class:`UnknownNodeError`)
    cannot cross the process boundary reliably, so the parent raises
    this carrier instead.  It derives from :class:`ReproError` exactly
    when the child's error did, which is what routes replay into the
    per-event quarantine path instead of failing startup.
    """


class QueryError(ProvenanceError):
    """A provenance query was malformed or referenced missing objects."""


class CursorError(QueryError):
    """A paged-search continuation token could not be honored.

    Raised when a cursor fails its integrity check (truncated, not
    base64, checksum mismatch — i.e. tampered or corrupted in transit)
    or was minted for a *different* query or scope than the one it is
    being replayed against.  A cursor from an older cache epoch is NOT
    an error: it transparently falls back to re-scoring (see
    :meth:`repro.service.service.ProvenanceService.ranked_search`).
    """


class QueryTimeoutError(QueryError):
    """A time-bounded query exceeded its deadline and was not recoverable.

    Most bounded queries degrade gracefully by returning partial results
    (see :mod:`repro.core.query.timebound`); this error is reserved for
    queries that cannot produce any meaningful partial result.
    """

    def __init__(self, deadline_ms: float) -> None:
        super().__init__(f"query exceeded its {deadline_ms:.0f} ms deadline")
        self.deadline_ms = deadline_ms
