"""Exception taxonomy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without also catching programming
errors such as :class:`TypeError`.  Subpackages raise the most specific
subclass that applies; the class docstrings describe when each is used.

Every class carries a stable, machine-readable ``code`` string — the
identifier a wire client branches on (``cursor_invalid``,
``tenant_quota_exceeded``, ...).  Codes are part of the API contract:
renaming one is a breaking change, while exception *classes* may move
or gain parents freely.  The single exception→HTTP-status mapping
lives here too (:data:`HTTP_STATUS_BY_CODE`, :func:`http_status_for`),
so the HTTP server never grows an isinstance ladder and every adapter
(present or future) agrees on what each failure means at the wire:

* 4xx — the request was wrong (malformed, unknown object, invalid
  tenant, bad cursor) and retrying it unchanged cannot succeed;
* 429 — admission refused it (rate, quota); retry after backing off;
* 5xx — the service could not serve it (overload, crashed worker,
  poisoned shard); the request may be fine and a retry may succeed.

Anything without an explicit status entry maps to 500 — unknown
failures must read as server faults, never as client mistakes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""

    #: Stable machine-readable identifier; subclasses override.
    code: str = "internal"


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""

    code = "config_invalid"


class InvalidTenantError(ConfigurationError):
    """An operation named a tenant id that is empty, ``None``, or
    ill-formed.

    Raised once, at the API boundary (facade or HTTP adapter) by
    :func:`repro.service.events.validate_user_id` — inner layers may
    assume every tenant id they see is well-formed.  Subclasses
    :class:`ConfigurationError` so pre-taxonomy callers catching that
    still work.
    """

    code = "invalid_tenant"


# --------------------------------------------------------------------------
# Web substrate errors
# --------------------------------------------------------------------------


class WebError(ReproError):
    """Base class for errors in the synthetic web substrate."""

    code = "web_error"


class InvalidUrlError(WebError, ValueError):
    """A string could not be parsed as a URL."""

    code = "url_invalid"


class PageNotFoundError(WebError, KeyError):
    """A fetch referenced a URL that does not exist in the web graph."""

    code = "page_not_found"


class RedirectLoopError(WebError):
    """A redirect chain exceeded the maximum number of hops."""

    code = "redirect_loop"


# --------------------------------------------------------------------------
# Browser substrate errors
# --------------------------------------------------------------------------


class BrowserError(ReproError):
    """Base class for errors in the browser simulator."""

    code = "browser_error"


class NoSuchTabError(BrowserError, KeyError):
    """An operation referenced a tab id that is not open."""

    code = "tab_not_found"


class NoSuchBookmarkError(BrowserError, KeyError):
    """An operation referenced a bookmark id that does not exist."""

    code = "bookmark_not_found"


class NoSuchDownloadError(BrowserError, KeyError):
    """An operation referenced a download id that does not exist."""

    code = "download_not_found"


class NavigationError(BrowserError):
    """A navigation could not be completed (e.g. bad URL, closed tab)."""

    code = "navigation_failed"


# --------------------------------------------------------------------------
# Provenance core errors
# --------------------------------------------------------------------------


class ProvenanceError(ReproError):
    """Base class for errors in the provenance core."""

    code = "provenance_error"


class CycleError(ProvenanceError):
    """An edge insertion would create a cycle in the provenance DAG.

    The paper (section 3.1) requires provenance to be acyclic; the
    versioning policies exist precisely to prevent this error from ever
    surfacing during normal capture.  It is raised only when a caller
    bypasses the policies and inserts a cyclic edge directly.
    """

    code = "edge_cycle"

    def __init__(self, source: str, target: str) -> None:
        super().__init__(
            f"edge {source!r} -> {target!r} would create a cycle in the provenance graph"
        )
        self.source = source
        self.target = target


class UnknownNodeError(ProvenanceError, KeyError):
    """A graph or store operation referenced a node id that does not exist."""

    code = "node_not_found"

    def __init__(self, node_id: str) -> None:
        super().__init__(f"unknown provenance node: {node_id!r}")
        self.node_id = node_id


class UnknownEdgeError(ProvenanceError, KeyError):
    """A graph or store operation referenced an edge id that does not exist."""

    code = "edge_not_found"

    def __init__(self, edge_id: str) -> None:
        super().__init__(f"unknown provenance edge: {edge_id!r}")
        self.edge_id = edge_id


class DuplicateNodeError(ProvenanceError):
    """A node with the same id was inserted twice with different content."""

    code = "node_duplicate"

    def __init__(self, node_id: str) -> None:
        super().__init__(f"duplicate provenance node: {node_id!r}")
        self.node_id = node_id


class StoreError(ProvenanceError):
    """A storage-layer failure (schema mismatch, closed connection, ...)."""

    code = "store_error"


class StoreClosedError(StoreError):
    """An operation was attempted on a store that has been closed."""

    code = "store_closed"


class StoreAffinityError(StoreError):
    """A store bound to one thread was touched from another.

    While a flush worker holds a store exclusively (see
    :meth:`repro.core.store.ProvenanceStore.exclusive`), writes from any
    other thread must fail loudly instead of interleaving statements
    into the worker's open transaction.
    """

    code = "store_affinity"


class SchemaVersionError(StoreError):
    """An on-disk store has a schema version this library cannot read."""

    code = "schema_version"

    def __init__(self, found: int, expected: int) -> None:
        super().__init__(
            f"store schema version {found} is not supported (expected {expected})"
        )
        self.found = found
        self.expected = expected


class ShardPoisonedError(StoreError):
    """A shard cannot serve while an undrained apply failure is parked.

    A poisoned shard's buffered events cannot drain until the next
    barrier requeues (or quarantines) the failing batch; operations
    that would require that drain report this instead of blocking.
    """

    code = "shard_poisoned"

    def __init__(self, shard: int) -> None:
        super().__init__(
            f"shard {shard} is poisoned by an undrained apply failure"
        )
        self.shard = shard


class WorkerCrashedError(ReproError):
    """A shard worker process died before acknowledging its batches.

    Raised by the process-based ingest path when a worker is killed (or
    crashes) mid-flush.  The batches it held are requeued by the
    pipeline and the journal still covers them, so a retrying flush —
    or a full crash replay — lands every event exactly once; this error
    is infrastructure, never a data problem, and is therefore not
    quarantined by :meth:`repro.service.ingest.IngestPipeline.replay`.
    """

    code = "worker_crashed"


class RemoteApplyError(ReproError):
    """A shard worker process rejected a batch with a data error.

    The worker's original exception (e.g. :class:`UnknownNodeError`)
    cannot cross the process boundary reliably, so the parent raises
    this carrier instead.  It derives from :class:`ReproError` exactly
    when the child's error did, which is what routes replay into the
    per-event quarantine path instead of failing startup.
    """

    code = "remote_apply_failed"


class IntegrityError(ProvenanceError):
    """The provenance record itself failed an integrity check.

    Raised when a hash-chained journal record, a segment seal, or the
    signed-root manifest cannot be authenticated: a malformed or
    tampered chained line, a digest that does not recompute, a
    signature that does not verify.  This is the one error class that
    means *the stored history may have been altered* — it is a server
    fault (the record is the service's to protect), never a client
    mistake, so it maps to 500 explicitly rather than by fallback.

    :meth:`repro.service.service.ProvenanceService.verify_integrity`
    reports corruption as data (an
    :class:`~repro.service.integrity.IntegrityReport` pinpointing the
    first bad record) rather than raising; this class is raised by the
    lower-level parsers and by callers that demand a verified chain.
    """

    code = "integrity_violation"


class QueryError(ProvenanceError):
    """A provenance query was malformed or referenced missing objects."""

    code = "query_invalid"


class CursorError(QueryError):
    """A paged-search continuation token could not be honored.

    Raised when a cursor fails its integrity check (truncated, not
    base64, checksum mismatch — i.e. tampered or corrupted in transit)
    or was minted for a *different* query or scope than the one it is
    being replayed against.  A cursor from an older cache epoch is NOT
    an error: it transparently falls back to re-scoring (see
    :meth:`repro.service.service.ProvenanceService.ranked_search`).
    """

    code = "cursor_invalid"


class QueryTimeoutError(QueryError):
    """A time-bounded query exceeded its deadline and was not recoverable.

    Most bounded queries degrade gracefully by returning partial results
    (see :mod:`repro.core.query.timebound`); this error is reserved for
    queries that cannot produce any meaningful partial result.
    """

    code = "query_timeout"

    def __init__(self, deadline_ms: float) -> None:
        super().__init__(f"query exceeded its {deadline_ms:.0f} ms deadline")
        self.deadline_ms = deadline_ms


# --------------------------------------------------------------------------
# Admission-control errors (the serving layer's shed decisions)
# --------------------------------------------------------------------------


class AdmissionError(ReproError):
    """Base class for requests refused *at admission* — before any
    journal append or store write.

    Admission rejections are by construction side-effect free: nothing
    was journaled, nothing applied, no sequence allocated.  A client
    may always retry the identical request later.
    """

    code = "admission_rejected"


class RateLimitedError(AdmissionError):
    """A tenant's token bucket could not cover the request's cost.

    ``retry_after_s`` says when the bucket will have refilled enough;
    the HTTP adapter surfaces it as a ``Retry-After`` header.
    """

    code = "rate_limited"

    def __init__(self, user_id: str, retry_after_s: float) -> None:
        super().__init__(
            f"tenant {user_id!r} is over its rate limit; retry in"
            f" {retry_after_s:.2f}s"
        )
        self.user_id = user_id
        self.retry_after_s = retry_after_s


class TenantQuotaError(AdmissionError):
    """A write would push a tenant past its event quota."""

    code = "tenant_quota_exceeded"

    def __init__(self, user_id: str, quota: int) -> None:
        super().__init__(
            f"tenant {user_id!r} exhausted its quota of {quota} events"
        )
        self.user_id = user_id
        self.quota = quota


class ConnectionLimitError(AdmissionError):
    """The server is at its concurrent-connection cap."""

    code = "connection_limit"

    def __init__(self, limit: int) -> None:
        super().__init__(f"connection limit of {limit} reached")
        self.limit = limit


class OverloadedError(AdmissionError):
    """The service shed the request to protect itself.

    Raised when the ingest backlog exceeds the configured ceiling
    (load must shed *before* the journal, not queue into SQLite) or
    when every facade-executor slot is busy.
    """

    code = "overloaded"


# --------------------------------------------------------------------------
# Wire-protocol errors (HTTP framing and request decoding)
# --------------------------------------------------------------------------


class ProtocolError(ReproError):
    """A request could not be parsed as HTTP/JSON this server speaks."""

    code = "bad_request"


class EndpointNotFoundError(ProtocolError):
    """The request named a method+path no route serves."""

    code = "not_found"

    def __init__(self, method: str, path: str) -> None:
        super().__init__(f"no route for {method} {path}")
        self.method = method
        self.path = path


class PayloadTooLargeError(ProtocolError):
    """A request body exceeded the configured size limit."""

    code = "payload_too_large"

    def __init__(self, size: int, limit: int) -> None:
        super().__init__(f"request body of {size} bytes exceeds {limit}")
        self.size = size
        self.limit = limit


class HeadersTooLargeError(ProtocolError):
    """A request line or header block exceeded the configured limit."""

    code = "headers_too_large"


# --------------------------------------------------------------------------
# The exception→HTTP-status mapping (one table, no isinstance ladders)
# --------------------------------------------------------------------------

#: ``code -> HTTP status``.  Codes absent here serve as 500: an error
#: the table does not know is a server fault until proven otherwise.
HTTP_STATUS_BY_CODE: dict[str, int] = {
    # The request itself was wrong; retrying unchanged cannot succeed.
    "config_invalid": 400,
    "invalid_tenant": 400,
    "bad_request": 400,
    "query_invalid": 400,
    "cursor_invalid": 400,
    "url_invalid": 400,
    # The request named something that does not exist.
    "not_found": 404,
    "node_not_found": 404,
    "edge_not_found": 404,
    "page_not_found": 404,
    # Framing limits.
    "payload_too_large": 413,
    "headers_too_large": 431,
    # Admission refused it; back off and retry.
    "admission_rejected": 429,
    "rate_limited": 429,
    "tenant_quota_exceeded": 429,
    # The service cannot serve right now; a retry may succeed.
    "connection_limit": 503,
    "overloaded": 503,
    "worker_crashed": 503,
    "shard_poisoned": 503,
    "store_closed": 503,
    "query_timeout": 504,
    # The stored record failed authentication: a server fault by
    # definition (explicit, though the fallback would agree).
    "integrity_violation": 500,
}


def error_code(exc: BaseException) -> str:
    """The stable machine-readable code for *exc*.

    Non-:class:`ReproError` exceptions are ``"internal"`` — unknown
    failures must never masquerade as a known client mistake.
    """
    if isinstance(exc, ReproError):
        return exc.code
    return "internal"


def http_status_for(exc: BaseException) -> int:
    """The HTTP status *exc* serves as; 500 for anything unmapped."""
    return HTTP_STATUS_BY_CODE.get(error_code(exc), 500)
