"""The Firefox 3 "smart location bar" (awesomebar).

Autocompletes typed text against history by substring-matching URL and
title, ranking by adaptive input history first (places previously
chosen for this input) and frecency second.  This is the feature the
paper's introduction holds up as the state of the art — and section
3.2's irony: every navigation made through it is recorded *without* a
relationship to the page the user was on.

The implementation matches the documented FF3 behaviour closely enough
for the sparsity ablation (E12) to be meaningful: heavy awesomebar
users generate typed transitions, which Places leaves unconnected.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.places import PlacesStore
from repro.ir.tokenize import tokenize


@dataclass(frozen=True, slots=True)
class BarSuggestion:
    """One autocomplete suggestion."""

    place_id: int
    url: str
    title: str
    frecency: int
    adaptive: bool


class AwesomeBar:
    """Autocomplete over a Places store."""

    def __init__(self, store: PlacesStore) -> None:
        self.store = store

    def suggest(self, text: str, *, limit: int = 6) -> list[BarSuggestion]:
        """Suggestions for *text*, adaptive matches first.

        Matching is word-wise: every token of the input must appear as
        a substring of the place's URL or title (FF3's "match on word
        boundaries" behaviour, simplified to substring containment).
        """
        tokens = tokenize(text)
        if not tokens:
            return []

        adaptive_ids = self._adaptive_place_ids(text)
        matches: list[BarSuggestion] = []
        for place in self.store.all_places(include_hidden=False):
            haystack = f"{place.url} {place.title}".lower()
            if all(token in haystack for token in tokens):
                matches.append(
                    BarSuggestion(
                        place_id=place.id,
                        url=place.url,
                        title=place.title,
                        frecency=place.frecency,
                        adaptive=place.id in adaptive_ids,
                    )
                )
        matches.sort(key=lambda s: (not s.adaptive, -s.frecency, s.url))
        return matches[:limit]

    def learn(self, text: str, place_id: int) -> None:
        """Record that the user picked *place_id* for input *text*."""
        self.store.record_input(place_id, text)

    def _adaptive_place_ids(self, text: str) -> set[int]:
        """Place ids previously chosen for inputs prefixed by *text*."""
        lowered = text.lower()
        return {
            place_id
            for place_id, input_text, _count in self.store.input_history()
            if input_text.startswith(lowered) or lowered.startswith(input_text)
        }
