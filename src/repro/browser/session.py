"""The browser simulator.

:class:`Browser` ties the substrates together: it fetches pages through
a :class:`~repro.web.serving.WebServer`, keeps tab state, records into
the Places/downloads/form-history stores exactly what Firefox 3
recorded (including Firefox's omissions — that fidelity is the point
of the baseline), and publishes the full event stream on an
:class:`~repro.browser.events.EventBus` for provenance capture layers.

The public methods are user gestures: ``navigate_typed``,
``click_link``, ``click_bookmark``, ``search_web``, ``submit_form``,
``download_link``, ``open_tab``/``close_tab``, ``back``.  The user
behaviour model (:mod:`repro.user.behavior`) drives these; examples
drive them directly to tell the paper's stories.
"""

from __future__ import annotations

import itertools

from repro.browser.awesomebar import AwesomeBar
from repro.browser.downloads import DownloadStore
from repro.browser.events import (
    BookmarkCreated,
    DownloadFinished,
    DownloadStarted,
    EmbedLoaded,
    EventBus,
    FormSubmitted,
    NavigationCommitted,
    PageClosed,
    SearchIssued,
    TabClosed,
    TabOpened,
)
from repro.browser.forms import FormHistoryStore
from repro.browser.frecency import recompute_recent
from repro.browser.places import PlacesStore
from repro.browser.tabs import OpenInterval, Tab
from repro.browser.transitions import TransitionType
from repro.clock import MICROSECONDS_PER_DAY, SimulatedClock
from repro.errors import NavigationError, NoSuchBookmarkError, NoSuchTabError
from repro.web.page import FetchResult, Page, PageKind
from repro.web.search_engine import SearchEngine
from repro.web.serving import WebServer
from repro.web.url import Url

#: Where simulated downloads land.
DOWNLOAD_DIR = "/home/user/Downloads"


class Browser:
    """A simulated Firefox-3-era browser."""

    def __init__(
        self,
        server: WebServer,
        clock: SimulatedClock,
        *,
        places_path: str = ":memory:",
        downloads_path: str = ":memory:",
        forms_path: str = ":memory:",
    ) -> None:
        self.server = server
        self.clock = clock
        self.places = PlacesStore(places_path)
        self.downloads = DownloadStore(downloads_path)
        self.forms = FormHistoryStore(forms_path)
        self.bus = EventBus()
        self.awesomebar = AwesomeBar(self.places)
        self.search_engine: SearchEngine | None = None
        self._tabs: dict[int, Tab] = {}
        self._tab_ids = itertools.count(1)
        self._session_ids = itertools.count(1)
        self._closed_intervals: list[OpenInterval] = []

    # -- configuration -------------------------------------------------------------

    def configure_search(self, engine: SearchEngine) -> None:
        """Install *engine* as the default search provider."""
        self.search_engine = engine
        self.server.register_handler(engine.host, engine.handler)

    # -- tab management --------------------------------------------------------------

    def open_tab(self, *, opener_tab_id: int | None = None) -> int:
        """Open a blank tab; return its id."""
        now = self.clock.tick()
        session_id = next(self._session_ids)
        tab_id = next(self._tab_ids)
        self._tabs[tab_id] = Tab(
            id=tab_id,
            session_id=session_id,
            opened_us=now,
            opener_tab_id=opener_tab_id,
        )
        self.bus.publish(
            TabOpened(timestamp_us=now, tab_id=tab_id, opener_tab_id=opener_tab_id)
        )
        return tab_id

    def close_tab(self, tab_id: int) -> None:
        """Close a tab, emitting the page-close the paper asks for."""
        tab = self._tab(tab_id)
        now = self.clock.tick()
        self._close_current_page(tab, now)
        del self._tabs[tab_id]
        self.bus.publish(TabClosed(timestamp_us=now, tab_id=tab_id))

    def open_tabs(self) -> list[int]:
        return sorted(self._tabs)

    def current_page(self, tab_id: int) -> Page | None:
        return self._tab(tab_id).page

    def current_url(self, tab_id: int) -> Url | None:
        return self._tab(tab_id).url

    # -- navigation gestures ------------------------------------------------------------

    def navigate_typed(self, tab_id: int, target: Url | str) -> FetchResult:
        """The user typed a URL (or accepted a location-bar completion).

        Firefox records the visit with ``from_visit = 0`` — no
        relationship to the page the user was on.  The event stream
        still carries ``previous_url`` so provenance capture can do
        better (section 3.2).
        """
        tab = self._tab(tab_id)
        url = target if isinstance(target, Url) else Url.parse(target)
        return self._navigate(
            tab,
            url,
            transition=TransitionType.TYPED,
            referrer=None,
            from_visit=0,
            typed=True,
            new_session=True,
        )

    def click_link(self, tab_id: int, target: Url, *, strict: bool = True
                   ) -> FetchResult:
        """The user clicked a link on the current page."""
        tab = self._tab(tab_id)
        if tab.page is None:
            raise NavigationError(f"tab {tab_id} has no page to click from")
        if strict and target not in tab.page.out_urls():
            raise NavigationError(
                f"{target} is not a link on {tab.page.url}"
            )
        return self._navigate(
            tab,
            target,
            transition=TransitionType.LINK,
            referrer=tab.page.url,
            from_visit=tab.current_visit_id,
        )

    def open_in_new_tab(self, tab_id: int, target: Url, *, strict: bool = True
                        ) -> int:
        """Middle-click: open *target* in a new tab; return the new tab id.

        The new tab inherits the opener's Places session — Firefox
        treats it as a continuation — and the link click is recorded
        with the opener page as referrer.
        """
        opener = self._tab(tab_id)
        if opener.page is None:
            raise NavigationError(f"tab {tab_id} has no page to open from")
        if strict and target not in opener.page.out_urls():
            raise NavigationError(f"{target} is not a link on {opener.page.url}")
        new_tab_id = self.open_tab(opener_tab_id=tab_id)
        new_tab = self._tab(new_tab_id)
        new_tab.session_id = opener.session_id
        self._navigate(
            new_tab,
            target,
            transition=TransitionType.LINK,
            referrer=opener.page.url,
            from_visit=opener.current_visit_id,
        )
        return new_tab_id

    def click_bookmark(self, tab_id: int, bookmark_id: int) -> FetchResult:
        """The user activated a bookmark (recorded relationship-free)."""
        tab = self._tab(tab_id)
        url = self._bookmark_url(bookmark_id)
        return self._navigate(
            tab,
            url,
            transition=TransitionType.BOOKMARK,
            referrer=None,
            from_visit=0,
            new_session=True,
            via_bookmark_id=bookmark_id,
        )

    def can_go_back(self, tab_id: int) -> bool:
        """Whether :meth:`back` would succeed for *tab_id*."""
        return self._tab(tab_id).can_go_back()

    def back(self, tab_id: int) -> Url:
        """Go back one page (no Places visit, Firefox behaviour)."""
        tab = self._tab(tab_id)
        if not tab.can_go_back():
            raise NavigationError(f"tab {tab_id} has no back history")
        now = self.clock.tick()
        self._close_current_page(tab, now)
        previous = tab.back_stack.pop()
        result = self.server.fetch(previous, timestamp_us=now)
        tab.page = result.page
        tab.page_opened_us = now
        return result.final_url

    # -- search ----------------------------------------------------------------------------

    def search_web(self, tab_id: int, query: str) -> FetchResult:
        """The user searched from the search box.

        Firefox 3: the query lands in form history (searchbar-history),
        the results page is visited with no ``from_visit``.  The
        :class:`SearchIssued` event carries the query for capture.
        """
        if self.search_engine is None:
            raise NavigationError("no search engine configured")
        tab = self._tab(tab_id)
        now = self.clock.tick()
        self.forms.record_search(query, when_us=now)
        results_url = self.search_engine.results_url(query)
        self.bus.publish(
            SearchIssued(
                timestamp_us=now,
                tab_id=tab_id,
                engine_host=self.search_engine.host,
                query=query,
                results_url=results_url,
            )
        )
        return self._navigate(
            tab,
            results_url,
            transition=TransitionType.LINK,
            referrer=None,
            from_visit=0,
            new_session=True,
        )

    def click_result(self, tab_id: int, index: int) -> FetchResult:
        """Click the *index*-th result on the current results page."""
        tab = self._tab(tab_id)
        if tab.page is None or tab.page.kind is not PageKind.SEARCH_RESULTS:
            raise NavigationError(f"tab {tab_id} is not showing search results")
        try:
            target = tab.page.links[index]
        except IndexError:
            raise NavigationError(
                f"results page has {len(tab.page.links)} results, no index {index}"
            ) from None
        return self.click_link(tab_id, target)

    # -- forms --------------------------------------------------------------------------------

    def submit_form(
        self,
        tab_id: int,
        action: Url,
        fields: dict[str, str],
    ) -> FetchResult:
        """Submit a form on the current page.

        Field values go to form history; the result page is visited as
        a LINK (Firefox records form submissions no differently from
        clicks — the capture layer is what makes them first-class,
        section 3.3).
        """
        tab = self._tab(tab_id)
        if tab.page is None:
            raise NavigationError(f"tab {tab_id} has no page with a form")
        now = self.clock.tick()
        for name, value in fields.items():
            self.forms.record(name, value, when_us=now)
        self.bus.publish(
            FormSubmitted(
                timestamp_us=now,
                tab_id=tab_id,
                source_url=tab.page.url,
                action_url=action,
                fields=tuple(sorted(fields.items())),
            )
        )
        return self._navigate(
            tab,
            action,
            transition=TransitionType.LINK,
            referrer=tab.page.url,
            from_visit=tab.current_visit_id,
        )

    # -- bookmarks -------------------------------------------------------------------------------

    def add_bookmark(self, tab_id: int, *, title: str | None = None) -> int:
        """Bookmark the current page; return the bookmark id."""
        tab = self._tab(tab_id)
        if tab.page is None:
            raise NavigationError(f"tab {tab_id} has no page to bookmark")
        now = self.clock.tick()
        final_title = title if title is not None else tab.page.title
        bookmark_id = self.places.add_bookmark(tab.page.url, final_title, when_us=now)
        self.bus.publish(
            BookmarkCreated(
                timestamp_us=now,
                tab_id=tab_id,
                bookmark_id=bookmark_id,
                url=tab.page.url,
                title=final_title,
            )
        )
        return bookmark_id

    # -- downloads ----------------------------------------------------------------------------------

    def download_link(self, tab_id: int, target: Url, *, strict: bool = True
                      ) -> int:
        """Download a file linked from the current page; return download id."""
        tab = self._tab(tab_id)
        if tab.page is None:
            raise NavigationError(f"tab {tab_id} has no page to download from")
        if strict and target not in tab.page.out_urls():
            raise NavigationError(f"{target} is not linked from {tab.page.url}")
        now = self.clock.tick()
        result = self.server.fetch(target, referrer=tab.page.url, timestamp_us=now)
        final = result.final_url
        target_path = f"{DOWNLOAD_DIR}/{final.filename or 'download'}"
        download_id = self.downloads.start_download(
            final,
            target_path,
            when_us=now,
            referrer=tab.page.url,
            size_bytes=result.page.size_bytes,
        )
        # Firefox also records a DOWNLOAD-transition visit in Places.
        self.places.add_visit(
            final,
            when_us=now,
            transition=TransitionType.DOWNLOAD,
            from_visit=tab.current_visit_id,
            session=tab.session_id,
        )
        self.bus.publish(
            DownloadStarted(
                timestamp_us=now,
                tab_id=tab_id,
                download_id=download_id,
                source_url=tab.page.url,
                download_url=final,
                target_path=target_path,
            )
        )
        done = self.clock.tick()
        self.downloads.finish_download(download_id, when_us=done)
        self.bus.publish(
            DownloadFinished(
                timestamp_us=done,
                download_id=download_id,
                download_url=final,
                target_path=target_path,
                ok=True,
            )
        )
        return download_id

    # -- housekeeping ------------------------------------------------------------------------------------

    def end_of_day(self) -> None:
        """Idle-time maintenance: recompute frecency (Firefox does this).

        Only places visited in the last day are touched, matching
        Firefox's dirty-entry maintenance and keeping the cost
        proportional to the day's browsing, not the whole history.
        """
        recompute_recent(
            self.places,
            since_us=max(0, self.clock.now_us - MICROSECONDS_PER_DAY),
            now_us=self.clock.now_us,
        )

    def closed_intervals(self) -> list[OpenInterval]:
        """Every completed page-display interval so far (copy)."""
        return list(self._closed_intervals)

    def shutdown(self) -> None:
        """Close all tabs and flush stores."""
        for tab_id in list(self._tabs):
            self.close_tab(tab_id)
        self.places.commit()
        self.downloads.commit()
        self.forms.commit()

    def close(self) -> None:
        """Shut down and release all store connections."""
        self.shutdown()
        self.places.close()
        self.downloads.close()
        self.forms.close()

    # -- internals ------------------------------------------------------------------------------------------

    def _tab(self, tab_id: int) -> Tab:
        try:
            return self._tabs[tab_id]
        except KeyError:
            raise NoSuchTabError(tab_id) from None

    def _bookmark_url(self, bookmark_id: int) -> Url:
        for existing_id, place_id, _title in self.places.bookmarks():
            if existing_id == bookmark_id:
                place = self.places.place_by_id(place_id)
                if place is None:
                    break
                return Url.parse(place.url)
        raise NoSuchBookmarkError(bookmark_id)

    def _close_current_page(self, tab: Tab, now: int) -> None:
        if tab.page is None:
            return
        self._closed_intervals.append(
            OpenInterval(
                tab_id=tab.id,
                url=tab.page.url,
                opened_us=tab.page_opened_us,
                closed_us=now,
            )
        )
        self.bus.publish(
            PageClosed(
                timestamp_us=now,
                tab_id=tab.id,
                url=tab.page.url,
                opened_us=tab.page_opened_us,
            )
        )

    def _navigate(
        self,
        tab: Tab,
        requested: Url,
        *,
        transition: TransitionType,
        referrer: Url | None,
        from_visit: int,
        typed: bool = False,
        new_session: bool = False,
        via_bookmark_id: int | None = None,
    ) -> FetchResult:
        now = self.clock.tick()
        result = self.server.fetch(requested, referrer=referrer, timestamp_us=now)

        previous_url = tab.url
        self._close_current_page(tab, now)
        if new_session:
            tab.session_id = next(self._session_ids)

        # Redirect hops: each hop gets a hidden visit chained by
        # from_visit, the final page's visit descends from the last hop
        # (Firefox's recording of server-side redirects).
        last_visit = from_visit
        for index, hop in enumerate(result.redirect_chain):
            hop_visit = self.places.add_visit(
                hop,
                when_us=self.clock.tick(),
                transition=(
                    transition if index == 0 else TransitionType.REDIRECT_TEMPORARY
                ),
                from_visit=last_visit,
                session=tab.session_id,
                typed=typed and index == 0,
            )
            last_visit = hop_visit.id

        final_transition = (
            TransitionType.REDIRECT_TEMPORARY if result.redirect_chain else transition
        )
        visit = self.places.add_visit(
            result.final_url,
            when_us=self.clock.tick(),
            transition=final_transition,
            title=result.page.title,
            from_visit=last_visit,
            session=tab.session_id,
            typed=typed and not result.redirect_chain,
        )

        if previous_url is not None:
            tab.back_stack.append(previous_url)
        tab.page = result.page
        tab.current_visit_id = visit.id
        tab.page_opened_us = visit.visit_date

        self.bus.publish(
            NavigationCommitted(
                timestamp_us=visit.visit_date,
                tab_id=tab.id,
                url=result.final_url,
                title=result.page.title,
                transition=transition,
                visit_id=visit.id,
                referrer=referrer,
                previous_url=previous_url,
                redirect_chain=result.redirect_chain,
                requested_url=requested,
                via_bookmark_id=via_bookmark_id,
            )
        )

        # Embedded content: hidden EMBED visits descending from the
        # top-level visit, one per sub-resource.
        for embed_url in result.page.embeds:
            embed_result = self.server.fetch(
                embed_url, referrer=result.final_url, timestamp_us=self.clock.now_us
            )
            embed_visit = self.places.add_visit(
                embed_result.final_url,
                when_us=self.clock.tick(),
                transition=TransitionType.EMBED,
                from_visit=visit.id,
                session=tab.session_id,
            )
            self.bus.publish(
                EmbedLoaded(
                    timestamp_us=embed_visit.visit_date,
                    tab_id=tab.id,
                    parent_url=result.final_url,
                    embed_url=embed_result.final_url,
                    visit_id=embed_visit.id,
                )
            )
        return result
