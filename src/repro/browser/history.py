"""Baseline textual history search.

This is the "Currently:" column of the paper's use cases: search over
the *text* of history entries — their URLs and titles — with no notion
of relationships.  For "rosebud" it returns the web-search page (the
term is in its URL and title) but not *Citizen Kane* (section 2.1).

Two modes are provided:

* :meth:`HistorySearch.substring_search` — faithful to Firefox 3's
  history sidebar: case-insensitive substring match over URL and
  title, ordered by visit count then recency;
* :meth:`HistorySearch.ranked_search` — a stronger tf-idf baseline over
  the same text, used in the experiments so the provenance comparison
  is against the best purely textual search, not a strawman.

Both deliberately see only ``moz_places`` — no visit graph — because
that is the baseline the paper argues against.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.places import PlaceRow, PlacesStore
from repro.ir.index import InvertedIndex
from repro.ir.scoring import tfidf_scores
from repro.ir.tokenize import tokenize, tokenize_filtered, url_tokens


@dataclass(frozen=True, slots=True)
class HistoryHit:
    """One history search result."""

    place_id: int
    url: str
    title: str
    score: float


class HistorySearch:
    """Textual search over a Places store.

    The index is rebuilt on demand when the store has grown; browsing
    and querying interleave freely.  Rebuild cost is linear in places,
    which at paper scale (~25k nodes) is well within the interactive
    budget — and is charged to the *baseline*, not to provenance.
    """

    def __init__(self, store: PlacesStore) -> None:
        self.store = store
        self._index = InvertedIndex()
        self._titles: dict[int, tuple[str, str]] = {}
        self._indexed_places = 0

    # -- indexing -------------------------------------------------------------

    def reindex(self) -> int:
        """Bring the index up to date; return places indexed."""
        places = self.store.all_places(include_hidden=False)
        if len(places) == self._indexed_places:
            return 0
        added = 0
        for place in places:
            if place.id in self._titles:
                continue
            tokens = url_tokens(place.url) + tokenize_filtered(place.title)
            self._index.add(_doc_id(place.id), tokens)
            self._titles[place.id] = (place.url, place.title)
            added += 1
        self._indexed_places = len(places)
        return added

    # -- search ----------------------------------------------------------------

    def ranked_search(self, query: str, *, limit: int = 10) -> list[HistoryHit]:
        """tf-idf ranked search over URL and title text."""
        self.reindex()
        terms = tokenize_filtered(query)
        if not terms:
            return []
        hits: list[HistoryHit] = []
        for scored in tfidf_scores(self._index, terms)[:limit]:
            place_id = _place_id(scored.doc_id)
            url, title = self._titles[place_id]
            hits.append(
                HistoryHit(place_id=place_id, url=url, title=title,
                           score=scored.score)
            )
        return hits

    def substring_search(self, query: str, *, limit: int = 10) -> list[HistoryHit]:
        """Firefox-3-sidebar-style substring match.

        Every query token must occur as a substring of the URL or
        title; results order by visit count, breaking ties by id
        (original visit order).
        """
        tokens = tokenize(query)
        if not tokens:
            return []
        matches: list[tuple[PlaceRow, int]] = []
        for place in self.store.all_places(include_hidden=False):
            haystack = f"{place.url} {place.title}".lower()
            if all(token in haystack for token in tokens):
                matches.append((place, place.visit_count))
        matches.sort(key=lambda pair: (-pair[1], pair[0].id))
        return [
            HistoryHit(
                place_id=place.id,
                url=place.url,
                title=place.title,
                score=float(count),
            )
            for place, count in matches[:limit]
        ]


def _doc_id(place_id: int) -> str:
    return f"place:{place_id}"


def _place_id(doc_id: str) -> int:
    return int(doc_id.split(":", 1)[1])
