"""Firefox transition types.

Firefox Places records, for every visit, the *transition* — the action
that loaded the page.  The paper (section 3) calls transitions "a
superset of the referrer" and builds its edge taxonomy on them.  The
integer values match ``nsINavHistoryService`` constants so a generated
``moz_historyvisits`` table is value-compatible with real Places data.
"""

from __future__ import annotations

import enum


class TransitionType(enum.IntEnum):
    """How a page visit was initiated (Firefox constants)."""

    #: The user followed a link on another page.
    LINK = 1
    #: The user typed the URL (or chose a location-bar completion).
    TYPED = 2
    #: The user activated a bookmark.
    BOOKMARK = 3
    #: Content embedded in a top-level page (image, iframe, ...).
    EMBED = 4
    #: A server-side permanent (301) redirect hop.
    REDIRECT_PERMANENT = 5
    #: A server-side temporary (302) redirect hop.
    REDIRECT_TEMPORARY = 6
    #: The visit saved a file to disk.
    DOWNLOAD = 7
    #: A link inside an embedded frame (added in Firefox 4; included
    #: for schema completeness, unused by the Firefox-3-era simulator).
    FRAMED_LINK = 8

    @property
    def is_redirect(self) -> bool:
        return self in (
            TransitionType.REDIRECT_PERMANENT,
            TransitionType.REDIRECT_TEMPORARY,
        )

    @property
    def is_user_action(self) -> bool:
        """Whether a user gesture caused the visit.

        Redirects and embeds happen to the user rather than because of
        the user; section 3.2 says personalization algorithms should be
        able to exclude them, and the capture layer tags provenance
        edges with this flag for exactly that purpose.
        """
        return self in (
            TransitionType.LINK,
            TransitionType.TYPED,
            TransitionType.BOOKMARK,
            TransitionType.DOWNLOAD,
        )

    @property
    def is_hidden(self) -> bool:
        """Whether Places hides the visit from history UI by default."""
        return self in (
            TransitionType.EMBED,
            TransitionType.REDIRECT_PERMANENT,
            TransitionType.REDIRECT_TEMPORARY,
            TransitionType.FRAMED_LINK,
        )


#: Frecency visit-type bonuses, as percentages, from Firefox 3 defaults
#: (``places.frecency.*VisitBonus`` preferences).
FRECENCY_BONUS = {
    TransitionType.LINK: 100,
    TransitionType.TYPED: 2000,
    TransitionType.BOOKMARK: 75,
    TransitionType.EMBED: 0,
    TransitionType.REDIRECT_PERMANENT: 25,
    TransitionType.REDIRECT_TEMPORARY: 25,
    TransitionType.DOWNLOAD: 0,
    TransitionType.FRAMED_LINK: 0,
}
