"""The browser event model.

Every user-visible thing the simulated browser does is announced as an
immutable event on a publish/subscribe bus.  Two independent consumers
exist:

* the Places-compatible store (:mod:`repro.browser.places`) records the
  subset Firefox 3 records — this is the *baseline* the paper measures
  overhead against;
* the provenance capture layer (:mod:`repro.core.capture`) records the
  richer graph the paper proposes, including the events Firefox drops
  (typed-URL context, page closes, form submissions as first-class
  objects).

Keeping both consumers on one event stream guarantees the overhead and
quality comparisons are apples-to-apples: same browsing, two stores.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.browser.transitions import TransitionType
from repro.web.url import Url


@dataclass(frozen=True, slots=True)
class BrowserEvent:
    """Base class: every event is timestamped."""

    timestamp_us: int


@dataclass(frozen=True, slots=True)
class TabOpened(BrowserEvent):
    tab_id: int
    #: The tab whose page spawned this one (e.g. middle-click), if any.
    opener_tab_id: int | None = None


@dataclass(frozen=True, slots=True)
class TabClosed(BrowserEvent):
    tab_id: int


@dataclass(frozen=True, slots=True)
class NavigationCommitted(BrowserEvent):
    """A top-level page load finished in a tab.

    ``previous_url`` is the page this navigation displaced in the same
    tab — present even for typed navigations, where Places records no
    relationship at all (the section 3.2 "second-class citizen" gap the
    provenance capture closes).

    ``redirect_chain`` holds the intermediate redirect URLs between the
    requested URL and ``url`` (empty when none).
    """

    tab_id: int
    url: Url
    title: str
    transition: TransitionType
    visit_id: int
    referrer: Url | None = None
    previous_url: Url | None = None
    redirect_chain: tuple[Url, ...] = ()
    requested_url: Url | None = None
    via_bookmark_id: int | None = None


@dataclass(frozen=True, slots=True)
class EmbedLoaded(BrowserEvent):
    """A sub-resource loaded inside a committed top-level page."""

    tab_id: int
    parent_url: Url
    embed_url: Url
    visit_id: int


@dataclass(frozen=True, slots=True)
class PageClosed(BrowserEvent):
    """A page stopped being displayed (navigated away or tab closed).

    Firefox does not record this; the paper (section 3.2) argues that
    without it "every page is always open" and co-open time
    relationships are unrecoverable.  Emitting it here is what enables
    the time-contextual experiments (E8/E13).
    """

    tab_id: int
    url: Url
    opened_us: int


@dataclass(frozen=True, slots=True)
class SearchIssued(BrowserEvent):
    """The user submitted a web search (via the search box)."""

    tab_id: int
    engine_host: str
    query: str
    results_url: Url


@dataclass(frozen=True, slots=True)
class FormSubmitted(BrowserEvent):
    """The user submitted a form on a page."""

    tab_id: int
    source_url: Url
    action_url: Url
    fields: tuple[tuple[str, str], ...]


@dataclass(frozen=True, slots=True)
class DownloadStarted(BrowserEvent):
    tab_id: int
    download_id: int
    source_url: Url
    download_url: Url
    target_path: str


@dataclass(frozen=True, slots=True)
class DownloadFinished(BrowserEvent):
    download_id: int
    download_url: Url
    target_path: str
    ok: bool = True


@dataclass(frozen=True, slots=True)
class BookmarkCreated(BrowserEvent):
    tab_id: int
    bookmark_id: int
    url: Url
    title: str


EventListener = Callable[[BrowserEvent], None]


@dataclass
class EventBus:
    """A minimal synchronous publish/subscribe bus.

    Listeners are invoked in subscription order; a listener that raises
    aborts the publish (fail-fast — silent capture loss would corrupt
    experiments).
    """

    _listeners: list[EventListener] = field(default_factory=list)
    published_count: int = 0

    def subscribe(self, listener: EventListener) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: EventListener) -> None:
        self._listeners.remove(listener)

    def publish(self, event: BrowserEvent) -> None:
        self.published_count += 1
        for listener in self._listeners:
            listener(event)
