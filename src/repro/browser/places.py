"""A Firefox-3 Places-compatible history store.

This is the *baseline* store of the reproduction: the paper measured
its provenance schema's overhead "over Places", so we implement Places
faithfully enough that the comparison is meaningful — same tables,
same columns, same recording policy (including what Firefox *drops*:
no relationship for typed navigations or bookmark activations, no page
closes, redirect and embed visits hidden).

Schema derived from Firefox 3.0's ``places.sqlite``: ``moz_places``,
``moz_historyvisits``, ``moz_bookmarks``, ``moz_inputhistory``, plus
the annotation tables (present, as in real profiles, even when unused).
Timestamps are PRTime-style microseconds.  Downloads and form history
live in *separate databases* (see :mod:`repro.browser.downloads` and
:mod:`repro.browser.forms`), reproducing the heterogeneous-store pain
of section 3.3.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from repro.browser.transitions import TransitionType
from repro.errors import StoreClosedError
from repro.web.url import Url

_SCHEMA = """
CREATE TABLE moz_places (
    id INTEGER PRIMARY KEY,
    url LONGVARCHAR,
    title LONGVARCHAR,
    rev_host LONGVARCHAR,
    visit_count INTEGER DEFAULT 0,
    hidden INTEGER DEFAULT 0 NOT NULL,
    typed INTEGER DEFAULT 0 NOT NULL,
    favicon_id INTEGER,
    frecency INTEGER DEFAULT -1 NOT NULL
);
CREATE UNIQUE INDEX moz_places_url_uniqueindex ON moz_places (url);
CREATE INDEX moz_places_frecencyindex ON moz_places (frecency);

CREATE TABLE moz_historyvisits (
    id INTEGER PRIMARY KEY,
    from_visit INTEGER,
    place_id INTEGER,
    visit_date INTEGER,
    visit_type INTEGER,
    session INTEGER
);
CREATE INDEX moz_historyvisits_placedateindex
    ON moz_historyvisits (place_id, visit_date);
CREATE INDEX moz_historyvisits_fromindex ON moz_historyvisits (from_visit);
CREATE INDEX moz_historyvisits_dateindex ON moz_historyvisits (visit_date);

CREATE TABLE moz_bookmarks (
    id INTEGER PRIMARY KEY,
    type INTEGER,
    fk INTEGER DEFAULT NULL,
    parent INTEGER,
    position INTEGER,
    title LONGVARCHAR,
    keyword_id INTEGER,
    folder_type TEXT,
    dateAdded INTEGER,
    lastModified INTEGER
);
CREATE INDEX moz_bookmarks_itemindex ON moz_bookmarks (fk, type);

CREATE TABLE moz_inputhistory (
    place_id INTEGER NOT NULL,
    input LONGVARCHAR NOT NULL,
    use_count INTEGER,
    PRIMARY KEY (place_id, input)
);

CREATE TABLE moz_anno_attributes (
    id INTEGER PRIMARY KEY,
    name VARCHAR(32) UNIQUE NOT NULL
);
CREATE TABLE moz_annos (
    id INTEGER PRIMARY KEY,
    place_id INTEGER NOT NULL,
    anno_attribute_id INTEGER,
    mime_type VARCHAR(32) DEFAULT NULL,
    content LONGVARCHAR,
    flags INTEGER DEFAULT 0,
    expiration INTEGER DEFAULT 0,
    type INTEGER DEFAULT 0,
    dateAdded INTEGER DEFAULT 0,
    lastModified INTEGER DEFAULT 0
);
"""

#: moz_bookmarks.type values (Firefox constants).
BOOKMARK_TYPE_URL = 1
BOOKMARK_TYPE_FOLDER = 2

#: The reserved root folder ids Firefox creates on first run.
ROOT_FOLDER_ID = 1
MENU_FOLDER_ID = 2


@dataclass(frozen=True, slots=True)
class PlaceRow:
    """One row of ``moz_places``."""

    id: int
    url: str
    title: str
    visit_count: int
    hidden: bool
    typed: bool
    frecency: int


@dataclass(frozen=True, slots=True)
class VisitRow:
    """One row of ``moz_historyvisits``."""

    id: int
    from_visit: int
    place_id: int
    visit_date: int
    visit_type: TransitionType
    session: int


class PlacesStore:
    """SQLite-backed Places database.

    Pass ``":memory:"`` for tests; benches use real files so that
    on-disk size (the E1/E2 measurement) is honest.
    """

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn: sqlite3.Connection | None = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.execute(
            "INSERT INTO moz_bookmarks (id, type, parent, position, title,"
            " dateAdded, lastModified) VALUES (?, ?, 0, 0, '', 0, 0)",
            (ROOT_FOLDER_ID, BOOKMARK_TYPE_FOLDER),
        )
        self._conn.execute(
            "INSERT INTO moz_bookmarks (id, type, parent, position, title,"
            " dateAdded, lastModified) VALUES (?, ?, 1, 0, 'Bookmarks Menu', 0, 0)",
            (MENU_FOLDER_ID, BOOKMARK_TYPE_FOLDER),
        )
        self._conn.commit()

    # -- lifecycle ---------------------------------------------------------------

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreClosedError("Places store is closed")
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def commit(self) -> None:
        self.conn.commit()

    def __enter__(self) -> "PlacesStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- recording ----------------------------------------------------------------

    def get_or_create_place(
        self, url: Url, title: str = "", *, hidden: bool = False
    ) -> int:
        """Return the place id for *url*, creating the row if needed.

        An existing row's title is refreshed when a non-empty title is
        supplied (Firefox updates titles on each visit).
        """
        text = str(url)
        row = self.conn.execute(
            "SELECT id, title FROM moz_places WHERE url = ?", (text,)
        ).fetchone()
        if row is not None:
            place_id, old_title = row
            if title and title != old_title:
                self.conn.execute(
                    "UPDATE moz_places SET title = ? WHERE id = ?", (title, place_id)
                )
            return place_id
        cursor = self.conn.execute(
            "INSERT INTO moz_places (url, title, rev_host, hidden)"
            " VALUES (?, ?, ?, ?)",
            (text, title, _rev_host(url.host), int(hidden)),
        )
        return cursor.lastrowid

    def add_visit(
        self,
        url: Url,
        *,
        when_us: int,
        transition: TransitionType,
        title: str = "",
        from_visit: int = 0,
        session: int = 0,
        typed: bool = False,
    ) -> VisitRow:
        """Record one visit, updating the place's counters.

        ``from_visit = 0`` means "no known antecedent" — Firefox's value
        for typed, bookmark, and search-box navigations, which is the
        sparse-connection defect the provenance capture repairs.
        """
        place_id = self.get_or_create_place(
            url, title, hidden=transition.is_hidden
        )
        cursor = self.conn.execute(
            "INSERT INTO moz_historyvisits"
            " (from_visit, place_id, visit_date, visit_type, session)"
            " VALUES (?, ?, ?, ?, ?)",
            (from_visit, place_id, when_us, int(transition), session),
        )
        # Visit counters: hidden visits do not increment visit_count
        # (Firefox behaviour); typed is sticky once set.
        count_delta = 0 if transition.is_hidden else 1
        if typed:
            self.conn.execute(
                "UPDATE moz_places SET visit_count = visit_count + ?, typed = 1"
                " WHERE id = ?",
                (count_delta, place_id),
            )
        elif count_delta:
            self.conn.execute(
                "UPDATE moz_places SET visit_count = visit_count + 1 WHERE id = ?",
                (place_id,),
            )
        return VisitRow(
            id=cursor.lastrowid,
            from_visit=from_visit,
            place_id=place_id,
            visit_date=when_us,
            visit_type=transition,
            session=session,
        )

    def add_bookmark(self, url: Url, title: str, *, when_us: int) -> int:
        """Add a bookmark under the menu folder; return its id."""
        place_id = self.get_or_create_place(url, title)
        position = self.conn.execute(
            "SELECT COUNT(*) FROM moz_bookmarks WHERE parent = ?",
            (MENU_FOLDER_ID,),
        ).fetchone()[0]
        cursor = self.conn.execute(
            "INSERT INTO moz_bookmarks"
            " (type, fk, parent, position, title, dateAdded, lastModified)"
            " VALUES (?, ?, ?, ?, ?, ?, ?)",
            (BOOKMARK_TYPE_URL, place_id, MENU_FOLDER_ID, position, title,
             when_us, when_us),
        )
        return cursor.lastrowid

    def record_input(self, place_id: int, text: str) -> None:
        """Record adaptive input history (location-bar learning)."""
        self.conn.execute(
            "INSERT INTO moz_inputhistory (place_id, input, use_count)"
            " VALUES (?, ?, 1)"
            " ON CONFLICT (place_id, input)"
            " DO UPDATE SET use_count = use_count + 1",
            (place_id, text.lower()),
        )

    def set_frecency(self, place_id: int, frecency: int) -> None:
        self.conn.execute(
            "UPDATE moz_places SET frecency = ? WHERE id = ?", (frecency, place_id)
        )

    # -- queries -------------------------------------------------------------------

    def place_by_url(self, url: Url) -> PlaceRow | None:
        row = self.conn.execute(
            "SELECT id, url, title, visit_count, hidden, typed, frecency"
            " FROM moz_places WHERE url = ?",
            (str(url),),
        ).fetchone()
        return _place_row(row) if row else None

    def place_by_id(self, place_id: int) -> PlaceRow | None:
        row = self.conn.execute(
            "SELECT id, url, title, visit_count, hidden, typed, frecency"
            " FROM moz_places WHERE id = ?",
            (place_id,),
        ).fetchone()
        return _place_row(row) if row else None

    def all_places(self, *, include_hidden: bool = False) -> list[PlaceRow]:
        sql = (
            "SELECT id, url, title, visit_count, hidden, typed, frecency"
            " FROM moz_places"
        )
        if not include_hidden:
            sql += " WHERE hidden = 0"
        return [_place_row(row) for row in self.conn.execute(sql + " ORDER BY id")]

    def visits_for_place(self, place_id: int) -> list[VisitRow]:
        rows = self.conn.execute(
            "SELECT id, from_visit, place_id, visit_date, visit_type, session"
            " FROM moz_historyvisits WHERE place_id = ? ORDER BY visit_date",
            (place_id,),
        )
        return [_visit_row(row) for row in rows]

    def visit_by_id(self, visit_id: int) -> VisitRow | None:
        row = self.conn.execute(
            "SELECT id, from_visit, place_id, visit_date, visit_type, session"
            " FROM moz_historyvisits WHERE id = ?",
            (visit_id,),
        ).fetchone()
        return _visit_row(row) if row else None

    def visits_between(self, start_us: int, end_us: int) -> list[VisitRow]:
        rows = self.conn.execute(
            "SELECT id, from_visit, place_id, visit_date, visit_type, session"
            " FROM moz_historyvisits"
            " WHERE visit_date >= ? AND visit_date < ? ORDER BY visit_date",
            (start_us, end_us),
        )
        return [_visit_row(row) for row in rows]

    def bookmarks(self) -> list[tuple[int, int, str]]:
        """All URL bookmarks as (bookmark_id, place_id, title)."""
        rows = self.conn.execute(
            "SELECT id, fk, title FROM moz_bookmarks WHERE type = ? ORDER BY id",
            (BOOKMARK_TYPE_URL,),
        )
        return [(row[0], row[1], row[2]) for row in rows]

    def input_history(self) -> list[tuple[int, str, int]]:
        rows = self.conn.execute(
            "SELECT place_id, input, use_count FROM moz_inputhistory"
            " ORDER BY place_id, input"
        )
        return [(row[0], row[1], row[2]) for row in rows]

    # -- accounting -----------------------------------------------------------------

    def place_count(self, *, include_hidden: bool = True) -> int:
        sql = "SELECT COUNT(*) FROM moz_places"
        if not include_hidden:
            sql += " WHERE hidden = 0"
        return self.conn.execute(sql).fetchone()[0]

    def visit_count(self) -> int:
        return self.conn.execute(
            "SELECT COUNT(*) FROM moz_historyvisits"
        ).fetchone()[0]

    def size_bytes(self) -> int:
        """Current database size (page_count x page_size).

        Accurate for both file and in-memory databases, and cheaper
        than a VACUUM-then-stat cycle; benches commit first.
        """
        page_count = self.conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = self.conn.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size


def _rev_host(host: str) -> str:
    """Places stores the host reversed with a trailing dot (index trick)."""
    return host[::-1] + "."


def _place_row(row: tuple) -> PlaceRow:
    return PlaceRow(
        id=row[0],
        url=row[1],
        title=row[2] or "",
        visit_count=row[3],
        hidden=bool(row[4]),
        typed=bool(row[5]),
        frecency=row[6],
    )


def _visit_row(row: tuple) -> VisitRow:
    return VisitRow(
        id=row[0],
        from_visit=row[1],
        place_id=row[2],
        visit_date=row[3],
        visit_type=TransitionType(row[4]),
        session=row[5],
    )
