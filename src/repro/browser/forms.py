"""Form and search-term history (``formhistory.sqlite``).

Firefox 3 stored every value the user typed into a form field — search
boxes included — in a standalone database keyed by field name.  The
paper (section 3.3) calls search terms "concise, conceptual,
user-generated descriptors" and laments that they sit outside the
history graph; this store reproduces that isolation, and the capture
layer shows what connecting them buys.
"""

from __future__ import annotations

import sqlite3
from dataclasses import dataclass

from repro.errors import StoreClosedError

_SCHEMA = """
CREATE TABLE moz_formhistory (
    id INTEGER PRIMARY KEY,
    fieldname LONGVARCHAR NOT NULL,
    value LONGVARCHAR NOT NULL,
    timesUsed INTEGER,
    firstUsed INTEGER,
    lastUsed INTEGER
);
CREATE INDEX moz_formhistory_index ON moz_formhistory (fieldname);
"""

#: The field name Firefox uses for the search bar.
SEARCHBAR_FIELD = "searchbar-history"


@dataclass(frozen=True, slots=True)
class FormEntry:
    """One row of ``moz_formhistory``."""

    id: int
    fieldname: str
    value: str
    times_used: int
    first_used: int
    last_used: int


class FormHistoryStore:
    """SQLite-backed form history with autocomplete lookups."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn: sqlite3.Connection | None = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreClosedError("form history store is closed")
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def commit(self) -> None:
        self.conn.commit()

    # -- recording ----------------------------------------------------------------

    def record(self, fieldname: str, value: str, *, when_us: int) -> None:
        """Record one use of *value* in *fieldname* (upsert semantics)."""
        updated = self.conn.execute(
            "UPDATE moz_formhistory"
            " SET timesUsed = timesUsed + 1, lastUsed = ?"
            " WHERE fieldname = ? AND value = ?",
            (when_us, fieldname, value),
        ).rowcount
        if not updated:
            self.conn.execute(
                "INSERT INTO moz_formhistory"
                " (fieldname, value, timesUsed, firstUsed, lastUsed)"
                " VALUES (?, ?, 1, ?, ?)",
                (fieldname, value, when_us, when_us),
            )

    def record_search(self, query: str, *, when_us: int) -> None:
        """Record a search-bar query (what Firefox's autocomplete learns)."""
        self.record(SEARCHBAR_FIELD, query, when_us=when_us)

    # -- queries ------------------------------------------------------------------

    def autocomplete(self, fieldname: str, prefix: str, *, limit: int = 10
                     ) -> list[str]:
        """Values for *fieldname* starting with *prefix*, most-used first."""
        rows = self.conn.execute(
            "SELECT value FROM moz_formhistory"
            " WHERE fieldname = ? AND value LIKE ?"
            " ORDER BY timesUsed DESC, lastUsed DESC LIMIT ?",
            (fieldname, prefix + "%", limit),
        )
        return [row[0] for row in rows]

    def searches(self) -> list[FormEntry]:
        """All recorded search-bar queries."""
        return self.entries_for(SEARCHBAR_FIELD)

    def entries_for(self, fieldname: str) -> list[FormEntry]:
        rows = self.conn.execute(
            "SELECT id, fieldname, value, timesUsed, firstUsed, lastUsed"
            " FROM moz_formhistory WHERE fieldname = ? ORDER BY id",
            (fieldname,),
        )
        return [_entry(row) for row in rows]

    def count(self) -> int:
        return self.conn.execute("SELECT COUNT(*) FROM moz_formhistory").fetchone()[0]

    def size_bytes(self) -> int:
        page_count = self.conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = self.conn.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size


def _entry(row: tuple) -> FormEntry:
    return FormEntry(
        id=row[0],
        fieldname=row[1],
        value=row[2],
        times_used=row[3],
        first_used=row[4],
        last_used=row[5],
    )
