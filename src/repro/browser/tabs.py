"""Tab state for the browser simulator.

Tabs exist in the reproduction because two of the paper's arguments
need them: opening a page in a new tab is a second-class relationship
Places under-records (section 3.2), and pages open *simultaneously* in
different tabs are what the time-contextual search (use case 2.3)
relates — "she was also searching for plane tickets at the time".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.web.page import Page
from repro.web.url import Url


@dataclass
class Tab:
    """One open tab: the displayed page plus session-history state."""

    id: int
    session_id: int
    opened_us: int
    opener_tab_id: int | None = None
    page: Page | None = None
    current_visit_id: int = 0
    #: When the currently displayed page appeared in this tab.
    page_opened_us: int = 0
    #: Session history for the back button (URLs only, like a browser's
    #: back list; Places rows are never duplicated by going back).
    back_stack: list[Url] = field(default_factory=list)

    @property
    def url(self) -> Url | None:
        return self.page.url if self.page else None

    @property
    def is_blank(self) -> bool:
        return self.page is None

    def can_go_back(self) -> bool:
        return bool(self.back_stack)


@dataclass
class OpenInterval:
    """A closed record of one page's time on screen in one tab.

    The stream of these intervals is exactly the "corresponding close
    to each page visit" the paper says browsers should record; the
    temporal query layer consumes them.
    """

    tab_id: int
    url: Url
    opened_us: int
    closed_us: int

    @property
    def duration_us(self) -> int:
        return self.closed_us - self.opened_us

    def overlaps(self, other: "OpenInterval") -> bool:
        """Whether two intervals share any instant of display time."""
        return self.opened_us < other.closed_us and other.opened_us < self.closed_us
