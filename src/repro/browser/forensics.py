"""Manual download forensics over heterogeneous stores (the baseline).

Use case 2.4's "Currently:" story: without provenance, finding where a
download came from means joining ``downloads.sqlite`` against Places
by URL string, then recursively walking ``from_visit`` links — and the
walk dead-ends wherever Firefox recorded no relationship (typed
navigations, bookmark clicks, search-bar searches).

This module implements that procedure faithfully, including its
failure modes, so the lineage experiment can compare: how often does
the manual walk reach a recognizable page, and how many steps does it
take, versus the provenance path query?
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.browser.downloads import DownloadStore
from repro.browser.places import PlacesStore, VisitRow
from repro.web.url import Url


@dataclass(frozen=True, slots=True)
class ForensicStep:
    """One hop of the manual walk."""

    place_id: int
    url: str
    title: str
    visit_count: int


@dataclass(frozen=True)
class ForensicResult:
    """Outcome of a manual forensic walk."""

    #: Steps from the download's source page upward, in walk order.
    steps: tuple[ForensicStep, ...]
    #: The first step that cleared the recognizability bar, if any.
    recognized: ForensicStep | None
    #: Why the walk stopped: 'recognized', 'dead_end', or 'not_found'.
    stopped_because: str

    @property
    def succeeded(self) -> bool:
        return self.recognized is not None


class ManualForensics:
    """The recursive history walk a user (or 2009 tool) performs."""

    def __init__(
        self,
        places: PlacesStore,
        downloads: DownloadStore,
        *,
        min_visits: int = 3,
    ) -> None:
        self.places = places
        self.downloads = downloads
        self.min_visits = min_visits

    def trace_download(self, download_id: int) -> ForensicResult:
        """Walk from a download back toward a recognizable page.

        Joins the download's source URL against Places, finds the
        DOWNLOAD-transition visit, and follows ``from_visit`` upward.
        Stops at the first page with ``visit_count >= min_visits``
        (recognized) or when ``from_visit`` is 0 (dead end — the gap
        the paper highlights).
        """
        download = self.downloads.get(download_id)
        source = Url.parse(download.source)
        place = self.places.place_by_url(source)
        if place is None:
            return ForensicResult(steps=(), recognized=None,
                                  stopped_because="not_found")

        # The visit that recorded the download, matched by time.
        visits = self.places.visits_for_place(place.id)
        anchor: VisitRow | None = None
        for visit in visits:
            if visit.visit_date == download.start_time:
                anchor = visit
                break
        if anchor is None and visits:
            anchor = visits[-1]
        if anchor is None:
            return ForensicResult(steps=(), recognized=None,
                                  stopped_because="not_found")

        steps: list[ForensicStep] = []
        seen_visits: set[int] = set()
        current = anchor
        while current.from_visit:
            if current.from_visit in seen_visits:
                break  # defensive: malformed chains
            seen_visits.add(current.from_visit)
            parent = self.places.visit_by_id(current.from_visit)
            if parent is None:
                break
            parent_place = self.places.place_by_id(parent.place_id)
            if parent_place is None:
                break
            step = ForensicStep(
                place_id=parent_place.id,
                url=parent_place.url,
                title=parent_place.title,
                visit_count=parent_place.visit_count,
            )
            steps.append(step)
            if parent_place.visit_count >= self.min_visits:
                return ForensicResult(
                    steps=tuple(steps),
                    recognized=step,
                    stopped_because="recognized",
                )
            current = parent
        return ForensicResult(
            steps=tuple(steps), recognized=None, stopped_because="dead_end"
        )

    def downloads_under_page(self, url: Url) -> list[int]:
        """Best-effort 'downloads descending from this page' baseline.

        Without descendant edges, the only heterogeneous-store answer
        is string matching: downloads whose recorded *referrer* is the
        page.  One level deep — exactly why the paper calls the real
        query "difficult for a user doing forensics".
        """
        matches = []
        for row in self.downloads.all_downloads():
            if row.referrer == str(url):
                matches.append(row.id)
        return matches
