"""Browser simulator substrate.

A Firefox-3-era browser faithful in the dimension that matters to the
paper: *what metadata it records*.  The Places store, download manager,
and form history reproduce Firefox's heterogeneous stores (and
omissions); the event bus exposes the full interaction stream that the
provenance capture layer (:mod:`repro.core.capture`) subscribes to.
"""

from repro.browser.awesomebar import AwesomeBar, BarSuggestion
from repro.browser.downloads import DownloadRow, DownloadState, DownloadStore
from repro.browser.events import (
    BookmarkCreated,
    BrowserEvent,
    DownloadFinished,
    DownloadStarted,
    EmbedLoaded,
    EventBus,
    FormSubmitted,
    NavigationCommitted,
    PageClosed,
    SearchIssued,
    TabClosed,
    TabOpened,
)
from repro.browser.forms import SEARCHBAR_FIELD, FormEntry, FormHistoryStore
from repro.browser.frecency import (
    frecency_score,
    recency_weight,
    recompute_all,
    recompute_frecency,
)
from repro.browser.history import HistoryHit, HistorySearch
from repro.browser.places import PlaceRow, PlacesStore, VisitRow
from repro.browser.session import DOWNLOAD_DIR, Browser
from repro.browser.tabs import OpenInterval, Tab
from repro.browser.transitions import FRECENCY_BONUS, TransitionType

__all__ = [
    "DOWNLOAD_DIR",
    "FRECENCY_BONUS",
    "SEARCHBAR_FIELD",
    "AwesomeBar",
    "BarSuggestion",
    "BookmarkCreated",
    "Browser",
    "BrowserEvent",
    "DownloadFinished",
    "DownloadRow",
    "DownloadStarted",
    "DownloadState",
    "DownloadStore",
    "EmbedLoaded",
    "EventBus",
    "FormEntry",
    "FormHistoryStore",
    "FormSubmitted",
    "HistoryHit",
    "HistorySearch",
    "NavigationCommitted",
    "OpenInterval",
    "PageClosed",
    "PlaceRow",
    "PlacesStore",
    "SearchIssued",
    "Tab",
    "TabClosed",
    "TabOpened",
    "TransitionType",
    "VisitRow",
    "frecency_score",
    "recency_weight",
    "recompute_all",
    "recompute_frecency",
]
