"""The Firefox 3 frecency algorithm.

Frecency ("frequency" + "recency") is the score behind the smart
location bar the paper's introduction cites as a flagship history
feature.  We implement the published Firefox 3 algorithm: sample the
place's ten most recent visits, weight each by a recency bucket and a
transition-type bonus, average, and scale by total visit count.

The reproduction needs frecency for two reasons: the awesomebar
baseline uses it, and the provenance queries use it as the
"likely to recognize" signal for download lineage (use case 2.4 — the
paper suggests defining recognizability "in terms of history, e.g.,
the number of visits").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.browser.places import PlacesStore
from repro.browser.transitions import FRECENCY_BONUS, TransitionType
from repro.clock import MICROSECONDS_PER_DAY

#: How many most-recent visits are sampled per place.
SAMPLE_SIZE = 10

#: Recency buckets: (cutoff in days, weight).  Firefox 3 defaults.
RECENCY_BUCKETS = (
    (4, 100),
    (14, 70),
    (31, 50),
    (90, 30),
)
DEFAULT_BUCKET_WEIGHT = 10


@dataclass(frozen=True, slots=True)
class VisitSample:
    """The two visit facts frecency scoring consumes."""

    age_days: float
    transition: TransitionType


def recency_weight(age_days: float) -> int:
    """Weight for a visit *age_days* old."""
    for cutoff, weight in RECENCY_BUCKETS:
        if age_days <= cutoff:
            return weight
    return DEFAULT_BUCKET_WEIGHT


def frecency_score(samples: list[VisitSample], visit_count: int) -> int:
    """Compute frecency from sampled visits.

    Follows Firefox: ``ceil(visit_count * sum(points) / len(samples))``
    where each visit contributes ``(bonus / 100) * bucket_weight``.
    Returns 0 for unvisited places (Firefox uses -1 for "unknown", but
    the simulator always knows).
    """
    if not samples or visit_count <= 0:
        return 0
    points = 0.0
    for sample in samples:
        bonus = FRECENCY_BONUS.get(sample.transition, 0)
        if bonus <= 0:
            continue
        points += (bonus / 100.0) * recency_weight(sample.age_days)
    if points <= 0.0:
        return 0
    return math.ceil(visit_count * points / len(samples))


def recompute_frecency(
    store: PlacesStore, place_id: int, *, now_us: int
) -> int:
    """Recompute and persist one place's frecency; return the new score."""
    visits = store.visits_for_place(place_id)
    if not visits:
        store.set_frecency(place_id, 0)
        return 0
    recent = visits[-SAMPLE_SIZE:]
    samples = [
        VisitSample(
            age_days=max(0.0, (now_us - visit.visit_date) / MICROSECONDS_PER_DAY),
            transition=visit.visit_type,
        )
        for visit in recent
    ]
    place = store.place_by_id(place_id)
    visit_count = place.visit_count if place else len(visits)
    score = frecency_score(samples, max(visit_count, 1))
    store.set_frecency(place_id, score)
    return score


def recompute_all(store: PlacesStore, *, now_us: int) -> int:
    """Recompute frecency for every place; return places touched.

    Full recomputation — O(places).  Use for small histories or final
    consistency passes; daily maintenance should use
    :func:`recompute_recent`.
    """
    touched = 0
    for place in store.all_places(include_hidden=True):
        recompute_frecency(store, place.id, now_us=now_us)
        touched += 1
    return touched


def recompute_recent(store: PlacesStore, *, since_us: int, now_us: int) -> int:
    """Recompute frecency for places visited since *since_us*.

    This mirrors Firefox's idle maintenance, which touches only dirty
    entries.  Older places keep a stale (over-estimated) score; the
    staleness only compresses ordering among long-unvisited pages,
    which none of the experiments read.
    """
    place_ids = {
        visit.place_id for visit in store.visits_between(since_us, now_us + 1)
    }
    for place_id in place_ids:
        recompute_frecency(store, place_id, now_us=now_us)
    return len(place_ids)
