"""Download manager with a Firefox-3-style separate database.

Firefox 3 kept downloads in ``downloads.sqlite`` (table
``moz_downloads``), *not* in Places — one of the heterogeneous stores
section 3.3 complains about: answering "where did this file come from?"
requires joining this database against Places by URL string.  The
baseline forensics walk in the lineage experiment does exactly that
join; the provenance store answers the same question from one table.
"""

from __future__ import annotations

import enum
import sqlite3
from dataclasses import dataclass

from repro.errors import NoSuchDownloadError, StoreClosedError
from repro.web.url import Url

_SCHEMA = """
CREATE TABLE moz_downloads (
    id INTEGER PRIMARY KEY,
    name LONGVARCHAR,
    source LONGVARCHAR,
    target LONGVARCHAR,
    tempPath LONGVARCHAR,
    startTime INTEGER,
    endTime INTEGER,
    state INTEGER,
    referrer LONGVARCHAR,
    entityID LONGVARCHAR,
    currBytes INTEGER NOT NULL DEFAULT 0,
    maxBytes INTEGER NOT NULL DEFAULT -1,
    mimeType LONGVARCHAR,
    preferredApplication LONGVARCHAR,
    preferredAction INTEGER NOT NULL DEFAULT 0,
    autoResume INTEGER NOT NULL DEFAULT 0
);
"""


class DownloadState(enum.IntEnum):
    """``moz_downloads.state`` values (Firefox constants)."""

    DOWNLOADING = 0
    FINISHED = 1
    FAILED = 2
    CANCELED = 3
    PAUSED = 4


@dataclass(frozen=True, slots=True)
class DownloadRow:
    """One row of ``moz_downloads``."""

    id: int
    name: str
    source: str
    target: str
    start_time: int
    end_time: int
    state: DownloadState
    referrer: str
    size_bytes: int


class DownloadStore:
    """SQLite-backed download history (``downloads.sqlite``)."""

    def __init__(self, path: str = ":memory:") -> None:
        self.path = path
        self._conn: sqlite3.Connection | None = sqlite3.connect(path)
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    @property
    def conn(self) -> sqlite3.Connection:
        if self._conn is None:
            raise StoreClosedError("download store is closed")
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.commit()
            self._conn.close()
            self._conn = None

    def commit(self) -> None:
        self.conn.commit()

    # -- recording ----------------------------------------------------------------

    def start_download(
        self,
        source: Url,
        target_path: str,
        *,
        when_us: int,
        referrer: Url | None = None,
        size_bytes: int = -1,
    ) -> int:
        """Record a starting download; return its id."""
        cursor = self.conn.execute(
            "INSERT INTO moz_downloads"
            " (name, source, target, startTime, endTime, state, referrer, maxBytes)"
            " VALUES (?, ?, ?, ?, 0, ?, ?, ?)",
            (
                source.filename or str(source),
                str(source),
                target_path,
                when_us,
                int(DownloadState.DOWNLOADING),
                str(referrer) if referrer else "",
                size_bytes,
            ),
        )
        return cursor.lastrowid

    def finish_download(
        self, download_id: int, *, when_us: int, ok: bool = True
    ) -> None:
        state = DownloadState.FINISHED if ok else DownloadState.FAILED
        updated = self.conn.execute(
            "UPDATE moz_downloads SET endTime = ?, state = ?,"
            " currBytes = CASE WHEN ? THEN maxBytes ELSE currBytes END"
            " WHERE id = ?",
            (when_us, int(state), int(ok), download_id),
        ).rowcount
        if not updated:
            raise NoSuchDownloadError(download_id)

    # -- queries --------------------------------------------------------------------

    def get(self, download_id: int) -> DownloadRow:
        row = self.conn.execute(
            "SELECT id, name, source, target, startTime, endTime, state,"
            " referrer, maxBytes FROM moz_downloads WHERE id = ?",
            (download_id,),
        ).fetchone()
        if row is None:
            raise NoSuchDownloadError(download_id)
        return _download_row(row)

    def all_downloads(self) -> list[DownloadRow]:
        rows = self.conn.execute(
            "SELECT id, name, source, target, startTime, endTime, state,"
            " referrer, maxBytes FROM moz_downloads ORDER BY id"
        )
        return [_download_row(row) for row in rows]

    def by_source(self, source: Url) -> list[DownloadRow]:
        rows = self.conn.execute(
            "SELECT id, name, source, target, startTime, endTime, state,"
            " referrer, maxBytes FROM moz_downloads WHERE source = ? ORDER BY id",
            (str(source),),
        )
        return [_download_row(row) for row in rows]

    def count(self) -> int:
        return self.conn.execute("SELECT COUNT(*) FROM moz_downloads").fetchone()[0]

    def size_bytes(self) -> int:
        page_count = self.conn.execute("PRAGMA page_count").fetchone()[0]
        page_size = self.conn.execute("PRAGMA page_size").fetchone()[0]
        return page_count * page_size


def _download_row(row: tuple) -> DownloadRow:
    return DownloadRow(
        id=row[0],
        name=row[1],
        source=row[2],
        target=row[3],
        start_time=row[4],
        end_time=row[5],
        state=DownloadState(row[6]),
        referrer=row[7],
        size_bytes=row[8],
    )
