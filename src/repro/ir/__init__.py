"""Information-retrieval toolkit.

Shared by the simulated web search engine and every flavour of history
search, so that ranking comparisons in the experiments reflect
provenance, not analyzer differences.
"""

from repro.ir.index import InvertedIndex, Posting, idf_from_counts
from repro.ir.pagerank import normalize_scores, pagerank
from repro.ir.scoring import Bm25Params, ScoredDoc, bm25_scores, coverage, tfidf_scores
from repro.ir.tokenize import (
    STOPWORDS,
    iter_tokens,
    jaccard,
    tokenize,
    tokenize_filtered,
    url_tokens,
)

__all__ = [
    "STOPWORDS",
    "Bm25Params",
    "InvertedIndex",
    "Posting",
    "ScoredDoc",
    "bm25_scores",
    "coverage",
    "idf_from_counts",
    "iter_tokens",
    "jaccard",
    "normalize_scores",
    "pagerank",
    "tfidf_scores",
    "tokenize",
    "tokenize_filtered",
    "url_tokens",
]
