"""Tokenization shared by the search engine and history search.

Both sides of every comparison in the reproduction (web search vs.
history search, textual baseline vs. provenance-aware search) must
tokenize identically, or ranking differences would be artifacts of
analysis rather than of provenance.  This module is that single shared
definition.
"""

from __future__ import annotations

import re
from collections.abc import Iterable, Iterator

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Minimal English stopword list.  History titles and synthetic bodies
#: are short, so aggressive stopping would lose signal; we remove only
#: the words that carry no topical content at all.
STOPWORDS = frozenset(
    """a an and are as at be by for from has have in is it its of on or
    that the this to was were will with www http https com net org
    html""".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercase and split *text* into alphanumeric tokens.

    >>> tokenize("Citizen Kane (1941) — review")
    ['citizen', 'kane', '1941', 'review']
    """
    return _TOKEN_RE.findall(text.lower())


def tokenize_filtered(text: str) -> list[str]:
    """Tokenize and drop stopwords."""
    return [token for token in tokenize(text) if token not in STOPWORDS]


def iter_tokens(texts: Iterable[str]) -> Iterator[str]:
    """Stream filtered tokens from many texts without concatenating."""
    for text in texts:
        yield from tokenize_filtered(text)


def url_tokens(url_text: str) -> list[str]:
    """Tokenize a URL the way history search engines do.

    Hosts and path segments both contribute: a search for "wine" should
    match ``www.wine-site0.com/cellar/`` on URL alone, which is exactly
    the "Currently:" behaviour of section 2.1's baseline.
    """
    return tokenize_filtered(url_text.replace("/", " ").replace("-", " "))


def jaccard(first: Iterable[str], second: Iterable[str]) -> float:
    """Jaccard similarity of two token collections (as sets)."""
    set_first = set(first)
    set_second = set(second)
    if not set_first and not set_second:
        return 0.0
    union = set_first | set_second
    return len(set_first & set_second) / len(union)
