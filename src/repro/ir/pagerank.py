"""PageRank over arbitrary string-keyed link graphs.

The simulated web search engine blends PageRank with BM25, mirroring
how 2009-era engines combined query-independent authority with lexical
relevance.  Kept dependency-free (no networkx) so the IR substrate has
no coupling to the analysis stack, and implemented with plain dicts —
graph sizes here are thousands of nodes, far below where vectorization
would matter.
"""

from __future__ import annotations

from collections.abc import Mapping


def pagerank(
    links: Mapping[str, list[str]],
    *,
    damping: float = 0.85,
    iterations: int = 40,
    tolerance: float = 1e-9,
) -> dict[str, float]:
    """Compute PageRank for a link graph.

    *links* maps each node to the nodes it links to; targets not present
    as keys are treated as sink nodes.  Sinks redistribute their rank
    uniformly (the standard dangling-node fix), so scores always sum to
    ~1.0, which tests rely on.

    Returns a dict over every node mentioned (as source or target).
    """
    if not 0.0 < damping < 1.0:
        raise ValueError("damping must be in (0, 1)")
    nodes: set[str] = set(links)
    for targets in links.values():
        nodes.update(targets)
    if not nodes:
        return {}

    node_list = sorted(nodes)
    count = len(node_list)
    rank = {node: 1.0 / count for node in node_list}
    out_degree = {node: len(links.get(node, ())) for node in node_list}

    for _ in range(iterations):
        next_rank = {node: (1.0 - damping) / count for node in node_list}
        dangling_mass = sum(
            rank[node] for node in node_list if out_degree[node] == 0
        )
        dangling_share = damping * dangling_mass / count
        for node in node_list:
            next_rank[node] += dangling_share
        for source, targets in links.items():
            if not targets:
                continue
            share = damping * rank[source] / len(targets)
            for target in targets:
                next_rank[target] += share
        delta = sum(abs(next_rank[node] - rank[node]) for node in node_list)
        rank = next_rank
        if delta < tolerance:
            break
    return rank


def normalize_scores(scores: Mapping[str, float]) -> dict[str, float]:
    """Scale scores to [0, 1] by the maximum (empty and all-zero safe)."""
    if not scores:
        return {}
    peak = max(scores.values())
    if peak <= 0.0:
        return {key: 0.0 for key in scores}
    return {key: value / peak for key, value in scores.items()}
