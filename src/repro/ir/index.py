"""Inverted index with incremental updates.

Backs both the simulated web search engine and the textual history
search baseline.  Documents are identified by opaque string ids (URLs
for the web, node ids for history), carry a token bag, and can be added
or removed at any time — history indexes grow as the user browses.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable
from dataclasses import dataclass


def idf_from_counts(doc_count: int, doc_frequency: int) -> float:
    """BM25-style smoothed inverse document frequency (never negative).

    The single definition every index implementation shares —
    :class:`InvertedIndex` and the service's SQL-backed per-shard views
    both delegate here, so a term scores identically whichever
    structure holds its postings.
    """
    return math.log(
        1.0 + (doc_count - doc_frequency + 0.5) / (doc_frequency + 0.5)
    )


@dataclass(frozen=True, slots=True)
class Posting:
    """One document's entry in a term's posting list."""

    doc_id: str
    term_frequency: int


class InvertedIndex:
    """A term -> postings mapping with document statistics.

    The index keeps per-document lengths for BM25 normalization and
    exposes document frequencies for idf.  All operations are O(tokens)
    — no global rebuilds — so capture-time incremental indexing stays
    cheap (the paper's feasibility argument depends on local, on-line
    maintenance of these structures).
    """

    def __init__(self) -> None:
        self._postings: dict[str, dict[str, int]] = {}
        self._doc_lengths: dict[str, int] = {}
        self._total_length = 0

    # -- mutation ---------------------------------------------------------------

    def add(self, doc_id: str, tokens: Iterable[str]) -> None:
        """Index *doc_id* with *tokens*; re-adding replaces the old entry."""
        if doc_id in self._doc_lengths:
            self.remove(doc_id)
        counts = Counter(tokens)
        length = sum(counts.values())
        self._doc_lengths[doc_id] = length
        self._total_length += length
        for term, frequency in counts.items():
            self._postings.setdefault(term, {})[doc_id] = frequency

    def remove(self, doc_id: str) -> None:
        """Remove *doc_id* from the index; missing ids are ignored."""
        length = self._doc_lengths.pop(doc_id, None)
        if length is None:
            return
        self._total_length -= length
        empty_terms = []
        for term, docs in self._postings.items():
            if doc_id in docs:
                del docs[doc_id]
                if not docs:
                    empty_terms.append(term)
        for term in empty_terms:
            del self._postings[term]

    # -- statistics ----------------------------------------------------------------

    def __contains__(self, doc_id: str) -> bool:
        return doc_id in self._doc_lengths

    def __len__(self) -> int:
        return len(self._doc_lengths)

    @property
    def vocabulary_size(self) -> int:
        return len(self._postings)

    @property
    def average_doc_length(self) -> float:
        if not self._doc_lengths:
            return 0.0
        return self._total_length / len(self._doc_lengths)

    def doc_length(self, doc_id: str) -> int:
        return self._doc_lengths.get(doc_id, 0)

    def document_frequency(self, term: str) -> int:
        return len(self._postings.get(term, ()))

    def idf(self, term: str) -> float:
        """BM25-style smoothed inverse document frequency (never negative)."""
        return idf_from_counts(
            len(self._doc_lengths), self.document_frequency(term)
        )

    def postings(self, term: str) -> list[Posting]:
        """The posting list for *term* (empty for unknown terms)."""
        docs = self._postings.get(term, {})
        return [Posting(doc_id, tf) for doc_id, tf in docs.items()]

    def doc_ids(self) -> list[str]:
        return list(self._doc_lengths.keys())

    def terms_for(self, doc_id: str) -> Counter[str]:
        """Reconstruct a document's term bag (O(vocabulary) — debug use)."""
        counts: Counter[str] = Counter()
        for term, docs in self._postings.items():
            if doc_id in docs:
                counts[term] = docs[doc_id]
        return counts
