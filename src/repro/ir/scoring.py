"""Lexical scoring functions over an :class:`~repro.ir.index.InvertedIndex`.

Provides tf-idf and BM25 scoring.  The simulated web search engine uses
BM25 blended with PageRank; the history-search baseline uses plain
tf-idf, matching the modest lexical matching a 2009-era browser's
history search performed.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.ir.index import InvertedIndex, idf_from_counts

__all__ = [
    "Bm25Params",
    "ScoredDoc",
    "bm25_scores",
    "coverage",
    "idf_from_counts",
    "tfidf_scores",
]


@dataclass(frozen=True, slots=True)
class ScoredDoc:
    """A document id with its retrieval score (higher is better)."""

    doc_id: str
    score: float


@dataclass(frozen=True)
class Bm25Params:
    """Standard BM25 free parameters."""

    k1: float = 1.2
    b: float = 0.75

    def __post_init__(self) -> None:
        if self.k1 < 0:
            raise ValueError("k1 must be non-negative")
        if not 0.0 <= self.b <= 1.0:
            raise ValueError("b must be in [0, 1]")


def tfidf_scores(index: InvertedIndex, terms: list[str]) -> list[ScoredDoc]:
    """Score every document matching any query term by tf·idf."""
    accumulator: dict[str, float] = defaultdict(float)
    for term in terms:
        idf = index.idf(term)
        for posting in index.postings(term):
            accumulator[posting.doc_id] += posting.term_frequency * idf
    return _ranked(accumulator)


def bm25_scores(
    index: InvertedIndex,
    terms: list[str],
    params: Bm25Params | None = None,
) -> list[ScoredDoc]:
    """Score every document matching any query term by BM25."""
    params = params or Bm25Params()
    average_length = index.average_doc_length or 1.0
    accumulator: dict[str, float] = defaultdict(float)
    for term in terms:
        idf = index.idf(term)
        for posting in index.postings(term):
            tf = posting.term_frequency
            length_norm = 1.0 - params.b + params.b * (
                index.doc_length(posting.doc_id) / average_length
            )
            accumulator[posting.doc_id] += idf * (
                tf * (params.k1 + 1.0) / (tf + params.k1 * length_norm)
            )
    return _ranked(accumulator)


def coverage(index: InvertedIndex, doc_id: str, terms: list[str]) -> float:
    """Fraction of distinct query terms present in *doc_id*.

    Used as a tie-breaker: documents matching all query terms beat
    documents matching one term many times.
    """
    if not terms:
        return 0.0
    distinct = set(terms)
    hits = sum(
        1 for term in distinct
        if any(p.doc_id == doc_id for p in index.postings(term))
    )
    return hits / len(distinct)


def _ranked(accumulator: dict[str, float]) -> list[ScoredDoc]:
    """Sort descending by score, then ascending by id for determinism."""
    return [
        ScoredDoc(doc_id, score)
        for doc_id, score in sorted(
            accumulator.items(), key=lambda item: (-item[1], item[0])
        )
    ]
